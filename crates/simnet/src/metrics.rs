//! Aggregate metrics: the objective `o_f` (Eq. 1) and supporting counters,
//! plus [`WindowedStats`] for constant-memory streaming views of long
//! (million-flow) episodes.

use crate::event::{DropReason, SimEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters collected over one simulation episode.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Flows that entered the network.
    pub arrived: u64,
    /// Flows completed successfully (`F_succ`).
    pub completed: u64,
    /// Flows dropped (`F_drop`), by reason. A `BTreeMap` so iteration —
    /// and therefore serialization — is deterministic regardless of
    /// insertion order (stable report diffs across runs).
    pub dropped: BTreeMap<DropReason, u64>,
    /// Sum of end-to-end delays of completed flows (for the Fig. 7 average).
    pub e2e_delay_sum: f64,
    /// Coordination decisions taken by agents.
    pub decisions: u64,
    /// Flows processed locally (per-component processings).
    pub processings: u64,
    /// Forwarding actions over links.
    pub forwards: u64,
    /// Hold actions on fully processed flows.
    pub holds: u64,
    /// Component instances started.
    pub instances_started: u64,
    /// Component instances stopped after idling.
    pub instances_stopped: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Total dropped flows `|F_drop|`.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Dropped flows for one reason.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.dropped.get(&reason).copied().unwrap_or(0)
    }

    /// Records one dropped flow (used by the simulator; public so test
    /// fixtures and aggregation code can build metrics).
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.dropped.entry(reason).or_insert(0) += 1;
    }

    /// The paper's objective `o_f = |F_succ| / (|F_succ| + |F_drop|)`
    /// (Eq. 1). Flows still in flight at the horizon count for neither.
    ///
    /// Returns 1.0 when no flow has terminated yet (vacuous success).
    /// Aggregation code should prefer [`Metrics::success_ratio_opt`] so
    /// vacuous episodes can be skipped instead of inflating averages.
    pub fn success_ratio(&self) -> f64 {
        self.success_ratio_opt().unwrap_or(1.0)
    }

    /// [`Metrics::success_ratio`] without the vacuous-success default:
    /// `None` when no flow has terminated, so callers aggregating across
    /// episodes can skip (rather than count as perfect) episodes where the
    /// objective is undefined.
    pub fn success_ratio_opt(&self) -> Option<f64> {
        let terminated = self.completed + self.dropped_total();
        if terminated == 0 {
            None
        } else {
            Some(self.completed as f64 / terminated as f64)
        }
    }

    /// Average end-to-end delay `d_f` of completed flows (Fig. 7), or
    /// `None` if no flow completed.
    pub fn avg_e2e_delay(&self) -> Option<f64> {
        if self.completed == 0 {
            None
        } else {
            Some(self.e2e_delay_sum / self.completed as f64)
        }
    }

    /// Flows neither completed nor dropped (still in flight at horizon).
    pub fn in_flight(&self) -> u64 {
        self.arrived - self.completed - self.dropped_total()
    }
}

/// Streaming statistics over the most recent `window` flow terminations.
///
/// [`Metrics`] aggregates a whole episode; on a million-flow run that
/// hides drift (a policy degrading mid-episode, a warm-up transient
/// inflating the mean). `WindowedStats` feeds on the event stream as it
/// is drained and answers "how is the system doing *right now*" from a
/// fixed ring buffer: O(1) per event, memory bounded by the window no
/// matter how long the episode runs.
#[derive(Debug, Clone)]
pub struct WindowedStats {
    window: usize,
    /// Ring of the last `window` terminations: `(completed, e2e_delay)`
    /// (delay is 0.0 for drops).
    ring: Vec<(bool, f64)>,
    next: usize,
    /// Rolling totals over the ring, maintained incrementally.
    completed: usize,
    delay_sum: f64,
    /// Lifetime terminations seen (not capped by the window).
    seen: u64,
}

impl WindowedStats {
    /// Creates a tracker over the last `window` terminations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedStats {
            window,
            ring: Vec::with_capacity(window),
            next: 0,
            completed: 0,
            delay_sum: 0.0,
            seen: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Terminations currently in the window (`min(seen, window)`).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no termination has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Lifetime terminations observed (unwindowed).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Feeds one event; only terminations (`FlowCompleted`/`FlowDropped`)
    /// move the window.
    pub fn observe(&mut self, event: &SimEvent) {
        match event {
            SimEvent::FlowCompleted { e2e_delay, .. } => self.push(true, *e2e_delay),
            SimEvent::FlowDropped { .. } => self.push(false, 0.0),
            _ => {}
        }
    }

    /// Feeds a drained event batch in order.
    pub fn observe_batch(&mut self, events: &[SimEvent]) {
        for ev in events {
            self.observe(ev);
        }
    }

    fn push(&mut self, completed: bool, delay: f64) {
        self.seen += 1;
        if self.ring.len() < self.window {
            self.ring.push((completed, delay));
        } else {
            let (old_done, old_delay) = self.ring[self.next];
            if old_done {
                self.completed -= 1;
                self.delay_sum -= old_delay;
            }
            self.ring[self.next] = (completed, delay);
            self.next = (self.next + 1) % self.window;
        }
        if completed {
            self.completed += 1;
            self.delay_sum += delay;
        }
    }

    /// Success ratio over the window, or `None` before any termination.
    pub fn success_ratio(&self) -> Option<f64> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.completed as f64 / self.ring.len() as f64)
        }
    }

    /// Mean end-to-end delay of completed flows in the window.
    pub fn avg_e2e_delay(&self) -> Option<f64> {
        if self.completed == 0 {
            None
        } else {
            Some(self.delay_sum / self.completed as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_ratio_counts_only_terminated() {
        let mut m = Metrics::new();
        assert_eq!(m.success_ratio(), 1.0);
        m.arrived = 10;
        m.completed = 6;
        m.record_drop(DropReason::LinkCapacity);
        m.record_drop(DropReason::LinkCapacity);
        assert_eq!(m.dropped_total(), 2);
        assert_eq!(m.dropped_for(DropReason::LinkCapacity), 2);
        assert_eq!(m.dropped_for(DropReason::NodeCapacity), 0);
        assert!((m.success_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(m.in_flight(), 2);
    }

    /// The optional variant distinguishes "no flow terminated" (undefined
    /// objective) from a genuinely perfect episode; the plain accessor
    /// keeps the historical 1.0 default.
    #[test]
    fn success_ratio_opt_flags_vacuous_episodes() {
        let mut m = Metrics::new();
        assert_eq!(m.success_ratio_opt(), None);
        assert_eq!(m.success_ratio(), 1.0);
        // Arrivals alone don't make the ratio defined: nothing terminated.
        m.arrived = 4;
        assert_eq!(m.success_ratio_opt(), None);
        m.completed = 3;
        m.record_drop(DropReason::DeadlineExpired);
        assert_eq!(m.success_ratio_opt(), Some(0.75));
        assert_eq!(m.success_ratio(), 0.75);
        // All-dropped is defined (0.0), not vacuous.
        let mut all_drop = Metrics::new();
        all_drop.arrived = 1;
        all_drop.record_drop(DropReason::NodeCapacity);
        assert_eq!(all_drop.success_ratio_opt(), Some(0.0));
    }

    #[test]
    fn avg_delay() {
        let mut m = Metrics::new();
        assert_eq!(m.avg_e2e_delay(), None);
        m.completed = 2;
        m.e2e_delay_sum = 42.0;
        assert_eq!(m.avg_e2e_delay(), Some(21.0));
    }

    /// Drop counters serialize identically no matter the order drops were
    /// recorded in: the ordered map fixes the key order, so two runs that
    /// saw the same drops emit byte-identical JSON.
    #[test]
    fn drop_counters_serialize_in_stable_order() {
        let mut forward = Metrics::new();
        for reason in DropReason::ALL {
            forward.record_drop(reason);
        }
        let mut reverse = Metrics::new();
        for reason in DropReason::ALL.iter().rev() {
            reverse.record_drop(*reason);
        }
        let a = serde_json::to_string(&forward).unwrap();
        let b = serde_json::to_string(&reverse).unwrap();
        assert_eq!(a, b, "insertion order leaked into the serialization");
        // Keys iterate in declaration (Ord) order.
        let keys: Vec<DropReason> = forward.dropped.keys().copied().collect();
        assert_eq!(keys, DropReason::ALL.to_vec());
        let back: Metrics = serde_json::from_str(&a).unwrap();
        assert_eq!(back, forward);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Metrics::new();
        m.arrived = 3;
        m.record_drop(DropReason::InvalidAction);
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    fn completed(delay: f64) -> SimEvent {
        SimEvent::FlowCompleted {
            flow: crate::flow::FlowId(0),
            time: 0.0,
            e2e_delay: delay,
            node: dosco_topology::NodeId(0),
        }
    }

    fn dropped() -> SimEvent {
        SimEvent::FlowDropped {
            flow: crate::flow::FlowId(0),
            time: 0.0,
            reason: DropReason::NodeCapacity,
            node: dosco_topology::NodeId(0),
        }
    }

    #[test]
    fn windowed_stats_slide_over_terminations() {
        let mut w = WindowedStats::new(3);
        assert_eq!(w.success_ratio(), None);
        assert!(w.is_empty());
        w.observe_batch(&[completed(4.0), completed(6.0), dropped()]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.success_ratio(), Some(2.0 / 3.0));
        assert_eq!(w.avg_e2e_delay(), Some(5.0));
        // A fourth termination evicts the oldest completion (delay 4.0).
        w.observe(&dropped());
        assert_eq!(w.len(), 3);
        assert_eq!(w.seen(), 4);
        assert_eq!(w.success_ratio(), Some(1.0 / 3.0));
        assert_eq!(w.avg_e2e_delay(), Some(6.0));
        // Two more drops push the last completion out.
        w.observe_batch(&[dropped(), dropped()]);
        assert_eq!(w.success_ratio(), Some(0.0));
        assert_eq!(w.avg_e2e_delay(), None);
    }

    #[test]
    fn windowed_stats_ignore_non_terminations() {
        let mut w = WindowedStats::new(2);
        w.observe(&SimEvent::Held {
            flow: crate::flow::FlowId(1),
            node: dosco_topology::NodeId(0),
            time: 1.0,
        });
        assert!(w.is_empty());
        assert_eq!(w.seen(), 0);
    }

    /// Memory is bounded by the window: feed far more terminations than
    /// the window holds and the ring never grows past it, while the
    /// rolling aggregates stay exact.
    #[test]
    fn windowed_stats_memory_is_window_bounded() {
        let mut w = WindowedStats::new(16);
        for i in 0..10_000u64 {
            if i % 2 == 0 {
                w.observe(&completed(1.0));
            } else {
                w.observe(&dropped());
            }
        }
        assert_eq!(w.len(), 16);
        assert_eq!(w.seen(), 10_000);
        assert_eq!(w.success_ratio(), Some(0.5));
        assert_eq!(w.avg_e2e_delay(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn windowed_stats_reject_zero_window() {
        WindowedStats::new(0);
    }
}
