//! Aggregate metrics: the objective `o_f` (Eq. 1) and supporting counters.

use crate::event::DropReason;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters collected over one simulation episode.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Flows that entered the network.
    pub arrived: u64,
    /// Flows completed successfully (`F_succ`).
    pub completed: u64,
    /// Flows dropped (`F_drop`), by reason. A `BTreeMap` so iteration —
    /// and therefore serialization — is deterministic regardless of
    /// insertion order (stable report diffs across runs).
    pub dropped: BTreeMap<DropReason, u64>,
    /// Sum of end-to-end delays of completed flows (for the Fig. 7 average).
    pub e2e_delay_sum: f64,
    /// Coordination decisions taken by agents.
    pub decisions: u64,
    /// Flows processed locally (per-component processings).
    pub processings: u64,
    /// Forwarding actions over links.
    pub forwards: u64,
    /// Hold actions on fully processed flows.
    pub holds: u64,
    /// Component instances started.
    pub instances_started: u64,
    /// Component instances stopped after idling.
    pub instances_stopped: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Total dropped flows `|F_drop|`.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Dropped flows for one reason.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.dropped.get(&reason).copied().unwrap_or(0)
    }

    /// Records one dropped flow (used by the simulator; public so test
    /// fixtures and aggregation code can build metrics).
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.dropped.entry(reason).or_insert(0) += 1;
    }

    /// The paper's objective `o_f = |F_succ| / (|F_succ| + |F_drop|)`
    /// (Eq. 1). Flows still in flight at the horizon count for neither.
    ///
    /// Returns 1.0 when no flow has terminated yet (vacuous success).
    /// Aggregation code should prefer [`Metrics::success_ratio_opt`] so
    /// vacuous episodes can be skipped instead of inflating averages.
    pub fn success_ratio(&self) -> f64 {
        self.success_ratio_opt().unwrap_or(1.0)
    }

    /// [`Metrics::success_ratio`] without the vacuous-success default:
    /// `None` when no flow has terminated, so callers aggregating across
    /// episodes can skip (rather than count as perfect) episodes where the
    /// objective is undefined.
    pub fn success_ratio_opt(&self) -> Option<f64> {
        let terminated = self.completed + self.dropped_total();
        if terminated == 0 {
            None
        } else {
            Some(self.completed as f64 / terminated as f64)
        }
    }

    /// Average end-to-end delay `d_f` of completed flows (Fig. 7), or
    /// `None` if no flow completed.
    pub fn avg_e2e_delay(&self) -> Option<f64> {
        if self.completed == 0 {
            None
        } else {
            Some(self.e2e_delay_sum / self.completed as f64)
        }
    }

    /// Flows neither completed nor dropped (still in flight at horizon).
    pub fn in_flight(&self) -> u64 {
        self.arrived - self.completed - self.dropped_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_ratio_counts_only_terminated() {
        let mut m = Metrics::new();
        assert_eq!(m.success_ratio(), 1.0);
        m.arrived = 10;
        m.completed = 6;
        m.record_drop(DropReason::LinkCapacity);
        m.record_drop(DropReason::LinkCapacity);
        assert_eq!(m.dropped_total(), 2);
        assert_eq!(m.dropped_for(DropReason::LinkCapacity), 2);
        assert_eq!(m.dropped_for(DropReason::NodeCapacity), 0);
        assert!((m.success_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(m.in_flight(), 2);
    }

    /// The optional variant distinguishes "no flow terminated" (undefined
    /// objective) from a genuinely perfect episode; the plain accessor
    /// keeps the historical 1.0 default.
    #[test]
    fn success_ratio_opt_flags_vacuous_episodes() {
        let mut m = Metrics::new();
        assert_eq!(m.success_ratio_opt(), None);
        assert_eq!(m.success_ratio(), 1.0);
        // Arrivals alone don't make the ratio defined: nothing terminated.
        m.arrived = 4;
        assert_eq!(m.success_ratio_opt(), None);
        m.completed = 3;
        m.record_drop(DropReason::DeadlineExpired);
        assert_eq!(m.success_ratio_opt(), Some(0.75));
        assert_eq!(m.success_ratio(), 0.75);
        // All-dropped is defined (0.0), not vacuous.
        let mut all_drop = Metrics::new();
        all_drop.arrived = 1;
        all_drop.record_drop(DropReason::NodeCapacity);
        assert_eq!(all_drop.success_ratio_opt(), Some(0.0));
    }

    #[test]
    fn avg_delay() {
        let mut m = Metrics::new();
        assert_eq!(m.avg_e2e_delay(), None);
        m.completed = 2;
        m.e2e_delay_sum = 42.0;
        assert_eq!(m.avg_e2e_delay(), Some(21.0));
    }

    /// Drop counters serialize identically no matter the order drops were
    /// recorded in: the ordered map fixes the key order, so two runs that
    /// saw the same drops emit byte-identical JSON.
    #[test]
    fn drop_counters_serialize_in_stable_order() {
        let mut forward = Metrics::new();
        for reason in DropReason::ALL {
            forward.record_drop(reason);
        }
        let mut reverse = Metrics::new();
        for reason in DropReason::ALL.iter().rev() {
            reverse.record_drop(*reason);
        }
        let a = serde_json::to_string(&forward).unwrap();
        let b = serde_json::to_string(&reverse).unwrap();
        assert_eq!(a, b, "insertion order leaked into the serialization");
        // Keys iterate in declaration (Ord) order.
        let keys: Vec<DropReason> = forward.dropped.keys().copied().collect();
        assert_eq!(keys, DropReason::ALL.to_vec());
        let back: Metrics = serde_json::from_str(&a).unwrap();
        assert_eq!(back, forward);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Metrics::new();
        m.arrived = 3;
        m.record_drop(DropReason::InvalidAction);
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
