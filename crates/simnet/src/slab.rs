//! Generational slab storage: dense, reusable slots with stale-handle
//! detection.
//!
//! The simulator keeps every live [`crate::flow::Flow`] in a [`Slab`]
//! instead of a `HashMap`: lookups are a bounds check plus a generation
//! compare (no hashing), freed slots are recycled LIFO (deterministically),
//! and memory reaches a steady-state high-water mark instead of growing
//! with episode length. Handles ([`SlotKey`]) embed the slot's generation,
//! so a key kept past its value's removal can never alias a recycled slot.

use std::fmt;

/// Handle to one slab slot: a dense index plus the generation the slot had
/// when the value was inserted. Stale keys (the slot was freed, possibly
/// refilled) fail the generation compare and read as absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// The dense slot index (stable while the value lives).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation this key was minted under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for SlotKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}v{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab: `insert` returns a [`SlotKey`], `get`/`remove`
/// are O(1) with no hashing, and freed slots are reused (LIFO) so the
/// allocation footprint is the concurrent high-water mark, not the
/// lifetime insert count.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    high_water: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` values before
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no value is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (live + free): the resident-memory proxy.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Peak concurrent live values over the slab's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts `value`, reusing a freed slot if one exists.
    ///
    /// # Panics
    ///
    /// Panics if the slab exceeds `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-list slot must be empty");
            slot.value = Some(value);
            return SlotKey {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("slab exceeds u32::MAX slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        SlotKey {
            index,
            generation: 0,
        }
    }

    /// The value behind `key`, or `None` if it was removed (stale key).
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        let slot = self.slots.get(key.index())?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the value behind `key`.
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.index())?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the value behind `key`; stale keys return
    /// `None` and change nothing. The slot's generation is bumped so any
    /// outstanding copy of `key` reads as absent from now on.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index())?;
        if slot.generation != key.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        Some(value)
    }

    /// Iterates over live values in slot order (diagnostics; O(capacity)).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_reused_and_stale_keys_miss() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // LIFO reuse: same dense index, new generation.
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(slab.get(a), None, "stale key must not alias the new value");
        assert_eq!(slab.get(b), Some(&2));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.capacity(), 1, "one slot serves both lifetimes");
    }

    #[test]
    fn high_water_tracks_peak_not_total() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        for k in &keys[..8] {
            slab.remove(*k);
        }
        for i in 0..4 {
            slab.insert(100 + i);
        }
        assert_eq!(slab.len(), 6);
        assert_eq!(slab.high_water(), 10);
        assert_eq!(slab.capacity(), 10, "churn must not grow the slab");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(5);
        *slab.get_mut(k).unwrap() += 10;
        assert_eq!(slab.get(k), Some(&15));
    }

    #[test]
    fn iter_yields_live_values_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        let _c = slab.insert(3);
        slab.remove(a);
        let live: Vec<i32> = slab.iter().copied().collect();
        assert_eq!(live, vec![2, 3]);
    }

    #[test]
    fn key_display() {
        let mut slab = Slab::new();
        let a = slab.insert(());
        slab.remove(a);
        let b = slab.insert(());
        assert_eq!(a.to_string(), "0v0");
        assert_eq!(b.to_string(), "0v1");
    }
}
