//! Services and their chained components (Sec. III-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service component `c ∈ C` (dense index into the
/// [`ServiceCatalog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

/// Identifier of a service `s ∈ S` (dense index into the
/// [`ServiceCatalog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub usize);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A service component (e.g. a VNF or microservice).
///
/// Processing a flow `f` at an instance of this component incurs
/// `processing_delay` and occupies `resources(λ_f)` node capacity for the
/// time the flow traverses the instance. New instances pay `startup_delay`
/// before processing begins (Sec. IV-A: `d_c^up`), and idle instances are
/// removed after `idle_timeout` (Sec. IV-A: `δ_c`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Human-readable name (e.g. `"FW"`, `"IDS"`, `"Video"`).
    pub name: String,
    /// Processing delay `d_c` in milliseconds.
    pub processing_delay: f64,
    /// Resource demand per unit of flow data rate: `r_c(λ) = fixed +
    /// per_rate · λ` (the paper's base scenario uses `r_c(λ) = λ`).
    pub resource_per_rate: f64,
    /// Load-independent part of the resource demand.
    pub resource_fixed: f64,
    /// Startup delay `d_c^up` paid when a new instance is placed.
    pub startup_delay: f64,
    /// Idle timeout `δ_c` after which unused instances are removed.
    pub idle_timeout: f64,
}

impl Component {
    /// A component with the paper's base-scenario parameters: 5 ms
    /// processing delay, resources linear in load (`r_c(λ) = λ`), zero
    /// startup delay, idle timeout 20.
    pub fn paper_default(name: impl Into<String>) -> Self {
        Component {
            name: name.into(),
            processing_delay: 5.0,
            resource_per_rate: 1.0,
            resource_fixed: 0.0,
            startup_delay: 0.0,
            idle_timeout: 20.0,
        }
    }

    /// The resource demand `r_c(λ)` for a flow of data rate `λ`.
    pub fn resources(&self, rate: f64) -> f64 {
        self.resource_fixed + self.resource_per_rate * rate
    }
}

/// A service: an ordered chain of components flows must traverse
/// (`s = (n_s, C_s)`, Sec. III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Human-readable name.
    pub name: String,
    /// The component chain `C_s = ⟨c_1, …, c_{n_s}⟩`.
    pub chain: Vec<ComponentId>,
}

impl Service {
    /// The chain length `n_s`.
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// Whether the chain is empty (never true for validated catalogs).
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }
}

/// Errors raised while validating a [`ServiceCatalog`].
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A service chain references an unknown component.
    UnknownComponent(ServiceId, ComponentId),
    /// A service chain is empty.
    EmptyChain(ServiceId),
    /// A component parameter is negative or non-finite.
    InvalidComponent(ComponentId, String),
    /// The catalog contains no services.
    NoServices,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownComponent(s, c) => {
                write!(f, "service {s} references unknown component {c}")
            }
            CatalogError::EmptyChain(s) => write!(f, "service {s} has an empty chain"),
            CatalogError::InvalidComponent(c, what) => {
                write!(f, "component {c} invalid: {what}")
            }
            CatalogError::NoServices => write!(f, "catalog contains no services"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// All components and services available in a scenario.
///
/// # Example
///
/// ```
/// use dosco_simnet::service::ServiceCatalog;
///
/// let catalog = ServiceCatalog::paper_video_service();
/// let s = catalog.service(dosco_simnet::ServiceId(0));
/// assert_eq!(s.len(), 3); // FW -> IDS -> Video
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCatalog {
    components: Vec<Component>,
    services: Vec<Service>,
}

impl ServiceCatalog {
    /// Builds a validated catalog.
    ///
    /// # Errors
    ///
    /// Returns a [`CatalogError`] if any service chain is empty or
    /// references unknown components, any component has negative or
    /// non-finite parameters, or there are no services.
    pub fn new(components: Vec<Component>, services: Vec<Service>) -> Result<Self, CatalogError> {
        if services.is_empty() {
            return Err(CatalogError::NoServices);
        }
        for (i, c) in components.iter().enumerate() {
            let id = ComponentId(i);
            for (what, v) in [
                ("processing delay", c.processing_delay),
                ("resource per rate", c.resource_per_rate),
                ("fixed resources", c.resource_fixed),
                ("startup delay", c.startup_delay),
                ("idle timeout", c.idle_timeout),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(CatalogError::InvalidComponent(
                        id,
                        format!("{what} {v} must be finite and ≥ 0"),
                    ));
                }
            }
        }
        for (i, s) in services.iter().enumerate() {
            let sid = ServiceId(i);
            if s.chain.is_empty() {
                return Err(CatalogError::EmptyChain(sid));
            }
            for &c in &s.chain {
                if c.0 >= components.len() {
                    return Err(CatalogError::UnknownComponent(sid, c));
                }
            }
        }
        Ok(ServiceCatalog {
            components,
            services,
        })
    }

    /// The paper's evaluation service: video streaming with
    /// `C_s = ⟨FW, IDS, Video⟩`, all components at the base parameters
    /// (Sec. V-A1). The service has id `ServiceId(0)`.
    pub fn paper_video_service() -> Self {
        let components = vec![
            Component::paper_default("FW"),
            Component::paper_default("IDS"),
            Component::paper_default("Video"),
        ];
        let services = vec![Service {
            name: "video-streaming".into(),
            chain: vec![ComponentId(0), ComponentId(1), ComponentId(2)],
        }];
        ServiceCatalog::new(components, services).expect("paper service is valid")
    }

    /// Number of distinct components `|C|`.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of services `|S|`.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// The component with id `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn component(&self, c: ComponentId) -> &Component {
        &self.components[c.0]
    }

    /// The service with id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn service(&self, s: ServiceId) -> &Service {
        &self.services[s.0]
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All services.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// The `i`-th component in service `s`'s chain, or `None` past the end
    /// (the flow is fully processed, `c_f = ∅`).
    pub fn component_at(&self, s: ServiceId, chain_pos: usize) -> Option<ComponentId> {
        self.services[s.0].chain.get(chain_pos).copied()
    }

    /// Minimum end-to-end processing delay of service `s` (sum of its
    /// components' processing delays, excluding startup delays).
    pub fn total_processing_delay(&self, s: ServiceId) -> f64 {
        self.services[s.0]
            .chain
            .iter()
            .map(|&c| self.components[c.0].processing_delay)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_service_shape() {
        let cat = ServiceCatalog::paper_video_service();
        assert_eq!(cat.num_components(), 3);
        assert_eq!(cat.num_services(), 1);
        let s = cat.service(ServiceId(0));
        assert_eq!(s.len(), 3);
        assert_eq!(cat.total_processing_delay(ServiceId(0)), 15.0);
        assert_eq!(cat.component(ComponentId(0)).name, "FW");
    }

    #[test]
    fn component_resources_linear() {
        let c = Component::paper_default("x");
        assert_eq!(c.resources(0.0), 0.0);
        assert_eq!(c.resources(2.5), 2.5);
        let affine = Component {
            resource_fixed: 0.5,
            ..Component::paper_default("y")
        };
        assert_eq!(affine.resources(2.0), 2.5);
    }

    #[test]
    fn chain_walk_terminates_with_none() {
        let cat = ServiceCatalog::paper_video_service();
        assert_eq!(cat.component_at(ServiceId(0), 0), Some(ComponentId(0)));
        assert_eq!(cat.component_at(ServiceId(0), 2), Some(ComponentId(2)));
        assert_eq!(cat.component_at(ServiceId(0), 3), None);
    }

    #[test]
    fn rejects_empty_chain() {
        let comps = vec![Component::paper_default("a")];
        let err = ServiceCatalog::new(
            comps,
            vec![Service {
                name: "bad".into(),
                chain: vec![],
            }],
        )
        .unwrap_err();
        assert_eq!(err, CatalogError::EmptyChain(ServiceId(0)));
    }

    #[test]
    fn rejects_unknown_component() {
        let comps = vec![Component::paper_default("a")];
        let err = ServiceCatalog::new(
            comps,
            vec![Service {
                name: "bad".into(),
                chain: vec![ComponentId(5)],
            }],
        )
        .unwrap_err();
        assert_eq!(err, CatalogError::UnknownComponent(ServiceId(0), ComponentId(5)));
    }

    #[test]
    fn rejects_invalid_component_params() {
        let mut c = Component::paper_default("a");
        c.processing_delay = -1.0;
        let err = ServiceCatalog::new(
            vec![c],
            vec![Service {
                name: "s".into(),
                chain: vec![ComponentId(0)],
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidComponent(..)));
    }

    #[test]
    fn rejects_empty_catalog() {
        assert_eq!(
            ServiceCatalog::new(vec![], vec![]).unwrap_err(),
            CatalogError::NoServices
        );
    }

    #[test]
    fn serde_round_trip() {
        let cat = ServiceCatalog::paper_video_service();
        let json = serde_json::to_string(&cat).unwrap();
        let back: ServiceCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(cat, back);
    }
}
