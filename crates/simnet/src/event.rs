//! The simulator's event queue and the public event stream.

use crate::flow::FlowId;
use crate::service::ComponentId;
use dosco_topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a flow was dropped (Sec. III / IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Processing the flow would exceed the node's compute capacity.
    NodeCapacity,
    /// Forwarding the flow would exceed the link's data-rate capacity.
    LinkCapacity,
    /// The flow's deadline `τ_f` expired.
    DeadlineExpired,
    /// The agent selected a non-existing neighbor (action `a > |V_v|`).
    InvalidAction,
}

impl DropReason {
    /// All drop reasons, for iteration in metrics reports.
    pub const ALL: [DropReason; 4] = [
        DropReason::NodeCapacity,
        DropReason::LinkCapacity,
        DropReason::DeadlineExpired,
        DropReason::InvalidAction,
    ];
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::NodeCapacity => "node-capacity",
            DropReason::LinkCapacity => "link-capacity",
            DropReason::DeadlineExpired => "deadline-expired",
            DropReason::InvalidAction => "invalid-action",
        };
        f.write_str(s)
    }
}

/// Public notifications emitted by the simulator, consumed by reward
/// functions (Sec. IV-B3), metrics, and logging.
///
/// All times are absolute simulation times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A new flow entered the network at its ingress.
    FlowArrived {
        /// The flow.
        flow: FlowId,
        /// Ingress node.
        node: NodeId,
        /// Arrival time.
        time: f64,
    },
    /// A flow departed successfully at its egress within its deadline.
    FlowCompleted {
        /// The flow.
        flow: FlowId,
        /// Completion time.
        time: f64,
        /// End-to-end delay `d_f = t_f^out − t_f^in`.
        e2e_delay: f64,
        /// The node where the last action on this flow was taken.
        node: NodeId,
    },
    /// A flow was dropped.
    FlowDropped {
        /// The flow.
        flow: FlowId,
        /// Drop time.
        time: f64,
        /// Why.
        reason: DropReason,
        /// The node responsible for (or observing) the drop.
        node: NodeId,
    },
    /// A flow finished processing at an instance (basis for the `+1/n_s`
    /// shaping reward).
    InstanceTraversed {
        /// The flow.
        flow: FlowId,
        /// Hosting node.
        node: NodeId,
        /// The traversed component.
        component: ComponentId,
        /// Length of the flow's service chain `n_{s_f}`.
        service_len: usize,
        /// Completion time of the processing.
        time: f64,
    },
    /// A flow was forwarded over a link (basis for the `−d_l / D_G`
    /// shaping penalty).
    Forwarded {
        /// The flow.
        flow: FlowId,
        /// Sending node.
        from: NodeId,
        /// Receiving neighbor.
        to: NodeId,
        /// The link used.
        link: LinkId,
        /// The link's propagation delay `d_l`.
        link_delay: f64,
        /// Forwarding time.
        time: f64,
    },
    /// A fully processed flow was held at a node for one time step (basis
    /// for the `−1 / D_G` shaping penalty).
    Held {
        /// The flow.
        flow: FlowId,
        /// The holding node.
        node: NodeId,
        /// Hold time.
        time: f64,
    },
    /// A new component instance was placed (`x_{c,v} := 1`).
    InstanceStarted {
        /// Hosting node.
        node: NodeId,
        /// Component.
        component: ComponentId,
        /// Placement time.
        time: f64,
    },
    /// An idle component instance was removed after its timeout.
    InstanceStopped {
        /// Hosting node.
        node: NodeId,
        /// Component.
        component: ComponentId,
        /// Removal time.
        time: f64,
    },
}

impl SimEvent {
    /// The flow this event concerns, if any.
    pub fn flow(&self) -> Option<FlowId> {
        match self {
            SimEvent::FlowArrived { flow, .. }
            | SimEvent::FlowCompleted { flow, .. }
            | SimEvent::FlowDropped { flow, .. }
            | SimEvent::InstanceTraversed { flow, .. }
            | SimEvent::Forwarded { flow, .. }
            | SimEvent::Held { flow, .. } => Some(*flow),
            SimEvent::InstanceStarted { .. } | SimEvent::InstanceStopped { .. } => None,
        }
    }
}

/// Internal scheduler events.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QueuedEvent {
    /// The `idx`-th ingress spec generates its next flow.
    Arrival { ingress_idx: usize },
    /// A flow's head is at a node and needs a coordination decision.
    Decision { flow: FlowId },
    /// A flow finishes processing its current component.
    ProcessingDone {
        flow: FlowId,
        node: NodeId,
        component: ComponentId,
    },
    /// Node resources reserved for a flow's processing are released (the
    /// flow's tail has left the instance).
    ReleaseNode {
        node: NodeId,
        component: ComponentId,
        amount: f64,
    },
    /// Link capacity reserved for a flow traversal is released.
    ReleaseLink { link: LinkId, amount: f64 },
    /// Check whether an instance has been idle for its full timeout.
    InstanceTimeout { node: NodeId, component: ComponentId },
}

/// A strictly ordered simulation timestamp. Construction validates against
/// NaN so the event queue's ordering is total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SimTime(f64);

impl SimTime {
    pub(crate) fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "simulation time must not be NaN");
        SimTime(t)
    }

    pub(crate) fn value(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

/// Heap entry: earliest time pops first; FIFO (by insertion sequence) among
/// equal times for determinism.
#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    event: QueuedEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on BinaryHeap (a max-heap).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub(crate) fn push(&mut self, time: f64, event: QueuedEvent) {
        let entry = Entry {
            time: SimTime::new(time),
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Pops the earliest event (FIFO among ties).
    pub(crate) fn pop(&mut self) -> Option<(f64, QueuedEvent)> {
        self.heap.pop().map(|e| (e.time.value(), e.event))
    }

    /// The time of the earliest queued event.
    pub(crate) fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time.value())
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(i: usize) -> QueuedEvent {
        QueuedEvent::Arrival { ingress_idx: i }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, marker(3));
        q.push(1.0, marker(1));
        q.push(2.0, marker(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        q.push(5.0, marker(0));
        q.push(5.0, marker(1));
        q.push(5.0, marker(2));
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                QueuedEvent::Arrival { ingress_idx } => ingress_idx,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(2.5, marker(0));
        q.push(1.5, marker(1));
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(2.5));
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, marker(0));
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::NodeCapacity.to_string(), "node-capacity");
        assert_eq!(DropReason::ALL.len(), 4);
    }

    #[test]
    fn sim_event_flow_accessor() {
        let e = SimEvent::FlowArrived {
            flow: FlowId(3),
            node: NodeId(0),
            time: 0.0,
        };
        assert_eq!(e.flow(), Some(FlowId(3)));
        let e2 = SimEvent::InstanceStarted {
            node: NodeId(0),
            component: ComponentId(0),
            time: 0.0,
        };
        assert_eq!(e2.flow(), None);
    }
}
