//! The simulator's public event stream.
//!
//! The scheduler behind it — the indexed, cancellable priority queue —
//! lives in [`crate::queue`].

use crate::flow::{FlowId, FlowKey};
use crate::service::ComponentId;
use dosco_topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a flow was dropped (Sec. III / IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Processing the flow would exceed the node's compute capacity.
    NodeCapacity,
    /// Forwarding the flow would exceed the link's data-rate capacity.
    LinkCapacity,
    /// The flow's deadline `τ_f` expired.
    DeadlineExpired,
    /// The agent selected a non-existing neighbor (action `a > |V_v|`).
    InvalidAction,
    /// The link carrying the flow failed mid-transit (substrate churn,
    /// [`crate::churn::TransitPolicy::Drop`]).
    LinkFailure,
    /// The node holding (or processing) the flow failed, or the flow
    /// arrived at a node while it was down (substrate churn).
    NodeFailure,
}

impl DropReason {
    /// All drop reasons, for iteration in metrics reports.
    pub const ALL: [DropReason; 6] = [
        DropReason::NodeCapacity,
        DropReason::LinkCapacity,
        DropReason::DeadlineExpired,
        DropReason::InvalidAction,
        DropReason::LinkFailure,
        DropReason::NodeFailure,
    ];
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::NodeCapacity => "node-capacity",
            DropReason::LinkCapacity => "link-capacity",
            DropReason::DeadlineExpired => "deadline-expired",
            DropReason::InvalidAction => "invalid-action",
            DropReason::LinkFailure => "link-failure",
            DropReason::NodeFailure => "node-failure",
        };
        f.write_str(s)
    }
}

/// Public notifications emitted by the simulator, consumed by reward
/// functions (Sec. IV-B3), metrics, and logging.
///
/// All times are absolute simulation times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A new flow entered the network at its ingress.
    FlowArrived {
        /// The flow.
        flow: FlowId,
        /// Ingress node.
        node: NodeId,
        /// Arrival time.
        time: f64,
    },
    /// A flow departed successfully at its egress within its deadline.
    FlowCompleted {
        /// The flow.
        flow: FlowId,
        /// Completion time.
        time: f64,
        /// End-to-end delay `d_f = t_f^out − t_f^in`.
        e2e_delay: f64,
        /// The node where the last action on this flow was taken.
        node: NodeId,
    },
    /// A flow was dropped.
    FlowDropped {
        /// The flow.
        flow: FlowId,
        /// Drop time.
        time: f64,
        /// Why.
        reason: DropReason,
        /// The node responsible for (or observing) the drop.
        node: NodeId,
    },
    /// A flow finished processing at an instance (basis for the `+1/n_s`
    /// shaping reward).
    InstanceTraversed {
        /// The flow.
        flow: FlowId,
        /// Hosting node.
        node: NodeId,
        /// The traversed component.
        component: ComponentId,
        /// Length of the flow's service chain `n_{s_f}`.
        service_len: usize,
        /// Completion time of the processing.
        time: f64,
    },
    /// A flow was forwarded over a link (basis for the `−d_l / D_G`
    /// shaping penalty).
    Forwarded {
        /// The flow.
        flow: FlowId,
        /// Sending node.
        from: NodeId,
        /// Receiving neighbor.
        to: NodeId,
        /// The link used.
        link: LinkId,
        /// The link's propagation delay `d_l`.
        link_delay: f64,
        /// Forwarding time.
        time: f64,
    },
    /// A fully processed flow was held at a node for one time step (basis
    /// for the `−1 / D_G` shaping penalty).
    Held {
        /// The flow.
        flow: FlowId,
        /// The holding node.
        node: NodeId,
        /// Hold time.
        time: f64,
    },
    /// A new component instance was placed (`x_{c,v} := 1`).
    InstanceStarted {
        /// Hosting node.
        node: NodeId,
        /// Component.
        component: ComponentId,
        /// Placement time.
        time: f64,
    },
    /// An idle component instance was removed after its timeout.
    InstanceStopped {
        /// Hosting node.
        node: NodeId,
        /// Component.
        component: ComponentId,
        /// Removal time.
        time: f64,
    },
    /// A substrate churn action (failure, repair, degradation, delay
    /// spike) was applied. Only emitted when the simulation runs with a
    /// non-empty [`crate::churn::ChurnTimeline`].
    ChurnApplied {
        /// What changed.
        action: crate::churn::ChurnAction,
        /// The topology version after applying it (monotonic from 1).
        topo_version: u64,
        /// Application time.
        time: f64,
    },
}

impl SimEvent {
    /// The flow this event concerns, if any.
    pub fn flow(&self) -> Option<FlowId> {
        match self {
            SimEvent::FlowArrived { flow, .. }
            | SimEvent::FlowCompleted { flow, .. }
            | SimEvent::FlowDropped { flow, .. }
            | SimEvent::InstanceTraversed { flow, .. }
            | SimEvent::Forwarded { flow, .. }
            | SimEvent::Held { flow, .. } => Some(*flow),
            SimEvent::InstanceStarted { .. }
            | SimEvent::InstanceStopped { .. }
            | SimEvent::ChurnApplied { .. } => None,
        }
    }
}

/// Internal scheduler events. Flow-addressed events carry the dense
/// [`FlowKey`] (slab handle), not the public [`FlowId`], so dispatching
/// them is a bounds check plus a generation compare — no hashing.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QueuedEvent {
    /// The `idx`-th ingress spec generates its next flow.
    Arrival { ingress_idx: usize },
    /// A flow's head is at a node and needs a coordination decision.
    Decision { flow: FlowKey },
    /// A flow finishes processing its current component.
    ProcessingDone {
        flow: FlowKey,
        node: NodeId,
        component: ComponentId,
    },
    /// Node resources reserved for a flow's processing are released (the
    /// flow's tail has left the instance). `epoch` is the node's churn
    /// epoch at reservation time: if the node failed in between, the
    /// release is stale (its capacity was already reclaimed wholesale)
    /// and is skipped.
    ReleaseNode {
        node: NodeId,
        component: ComponentId,
        amount: f64,
        epoch: u64,
    },
    /// Link capacity reserved for a flow traversal is released. `epoch`
    /// guards staleness across link failures, like `ReleaseNode`.
    ReleaseLink { link: LinkId, amount: f64, epoch: u64 },
    /// Check whether an instance has been idle for its full timeout.
    InstanceTimeout { node: NodeId, component: ComponentId },
    /// Apply the `idx`-th entry of the churn timeline.
    Churn { idx: usize },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::NodeCapacity.to_string(), "node-capacity");
        assert_eq!(DropReason::LinkFailure.to_string(), "link-failure");
        assert_eq!(DropReason::NodeFailure.to_string(), "node-failure");
        assert_eq!(DropReason::ALL.len(), 6);
    }

    #[test]
    fn sim_event_flow_accessor() {
        let e = SimEvent::FlowArrived {
            flow: FlowId(3),
            node: NodeId(0),
            time: 0.0,
        };
        assert_eq!(e.flow(), Some(FlowId(3)));
        let e2 = SimEvent::InstanceStarted {
            node: NodeId(0),
            component: ComponentId(0),
            time: 0.0,
        };
        assert_eq!(e2.flow(), None);
    }
}
