//! Utilization probing: time-series recording of node/link utilization
//! and live-flow counts while any coordinator runs.
//!
//! Wrap a coordinator in a [`Probe`] to sample the network state at a
//! fixed period — the raw material for utilization plots, bottleneck
//! analysis, and load-balance diagnostics that the figures aggregate away.

use crate::coordinator::{Action, Coordinator, DecisionPoint};
use crate::sim::Simulation;
use serde::{Deserialize, Serialize};

/// One utilization sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample time.
    pub time: f64,
    /// Per-node utilization fraction `r_v(t) / cap_v` (1.0 for zero-
    /// capacity nodes).
    pub node_util: Vec<f64>,
    /// Per-link utilization fraction `r_l(t) / cap_l`.
    pub link_util: Vec<f64>,
    /// Flows currently in the network.
    pub live_flows: usize,
    /// Placed component instances.
    pub instances: usize,
}

/// Records [`Sample`]s at a fixed period while delegating all decisions to
/// an inner coordinator.
///
/// # Example
///
/// ```
/// use dosco_simnet::{coordinator::AlwaysLocal, probe::Probe, ScenarioConfig, Simulation};
///
/// let mut probe = Probe::new(AlwaysLocal, 50.0);
/// let mut sim = Simulation::new(ScenarioConfig::paper_base(1).with_horizon(500.0), 1);
/// sim.run(&mut probe);
/// assert!(!probe.samples().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Probe<C> {
    inner: C,
    period: f64,
    next_sample: f64,
    samples: Vec<Sample>,
    /// Keep only the most recent `n` samples when set; unbounded otherwise.
    window: Option<usize>,
}

impl<C> Probe<C> {
    /// Wraps `inner`, sampling every `period` time units (at the first
    /// decision at or after each boundary).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not finite and positive.
    pub fn new(inner: C, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "sample period must be finite and positive, got {period}"
        );
        Probe {
            inner,
            period,
            next_sample: 0.0,
            samples: Vec::new(),
            window: None,
        }
    }

    /// Bounds recording to the most recent `window` samples (oldest are
    /// evicted), so memory stays constant on arbitrarily long episodes —
    /// the probing analog of [`crate::metrics::WindowedStats`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "sample window must be positive");
        self.window = Some(window);
        self
    }

    /// The recorded samples (the most recent `window` of them when
    /// bounded), oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The wrapped coordinator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps into the inner coordinator and the samples.
    pub fn into_parts(self) -> (C, Vec<Sample>) {
        (self.inner, self.samples)
    }

    /// Peak node utilization across all samples and nodes.
    pub fn peak_node_utilization(&self) -> f64 {
        self.samples
            .iter()
            .flat_map(|s| s.node_util.iter().copied())
            .fold(0.0, f64::max)
    }

    /// Mean node utilization across all samples and nodes.
    pub fn mean_node_utilization(&self) -> f64 {
        let (sum, count) = self
            .samples
            .iter()
            .flat_map(|s| s.node_util.iter().copied())
            .fold((0.0, 0usize), |(s, c), v| (s + v, c + 1));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    fn take_sample(&mut self, sim: &Simulation) {
        let topo = sim.topology();
        let node_util = topo
            .node_ids()
            .map(|v| {
                let cap = topo.node(v).capacity;
                if cap <= 0.0 {
                    1.0
                } else {
                    (sim.node_used(v) / cap).clamp(0.0, 1.0)
                }
            })
            .collect();
        let link_util = topo
            .link_ids()
            .map(|l| {
                let cap = topo.link(l).capacity;
                if cap <= 0.0 {
                    1.0
                } else {
                    (sim.link_used(l) / cap).clamp(0.0, 1.0)
                }
            })
            .collect();
        if let Some(w) = self.window {
            // Eviction is O(window) but runs once per sample period — noise
            // next to the per-sample utilization scan itself.
            while self.samples.len() >= w {
                self.samples.remove(0);
            }
        }
        self.samples.push(Sample {
            time: sim.time(),
            node_util,
            link_util,
            live_flows: sim.live_flows(),
            instances: sim.num_instances(),
        });
    }
}

impl<C: Coordinator> Coordinator for Probe<C> {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        if sim.time() >= self.next_sample {
            self.take_sample(sim);
            self.next_sample = sim.time() + self.period;
        }
        self.inner.decide(sim, dp)
    }

    fn observe(&mut self, sim: &Simulation, events: &[crate::event::SimEvent]) {
        self.inner.observe(sim, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::coordinator::RandomCoordinator;

    #[test]
    fn samples_cover_episode_at_period() {
        let cfg = ScenarioConfig::paper_base(2)
            .with_pattern(dosco_traffic::ArrivalPattern::paper_poisson())
            .with_horizon(1_000.0);
        let mut probe = Probe::new(RandomCoordinator::new(1), 100.0);
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut probe);
        let n = probe.samples().len();
        assert!((8..=12).contains(&n), "{n} samples over 1000/100");
        // Times are increasing and at least a period apart.
        for w in probe.samples().windows(2) {
            assert!(w[1].time - w[0].time >= 100.0 - 1e-9);
        }
    }

    #[test]
    fn utilization_fractions_bounded() {
        let cfg = ScenarioConfig::paper_base(3)
            .with_pattern(dosco_traffic::ArrivalPattern::paper_poisson())
            .with_horizon(800.0);
        let mut probe = Probe::new(RandomCoordinator::new(2), 50.0);
        let mut sim = Simulation::new(cfg, 2);
        sim.run(&mut probe);
        for s in probe.samples() {
            assert_eq!(s.node_util.len(), 11);
            assert_eq!(s.link_util.len(), 14);
            for &u in s.node_util.iter().chain(&s.link_util) {
                assert!((0.0..=1.0).contains(&u));
            }
        }
        assert!(probe.peak_node_utilization() >= probe.mean_node_utilization());
    }

    #[test]
    fn into_parts_returns_inner() {
        let probe = Probe::new(RandomCoordinator::new(3), 10.0);
        let (_inner, samples) = probe.into_parts();
        assert!(samples.is_empty());
    }

    #[test]
    fn window_bounds_samples_and_keeps_newest() {
        let cfg = ScenarioConfig::paper_base(2)
            .with_pattern(dosco_traffic::ArrivalPattern::paper_poisson())
            .with_horizon(1_000.0);
        let mut unbounded = Probe::new(RandomCoordinator::new(1), 100.0);
        Simulation::new(cfg.clone(), 1).run(&mut unbounded);
        let mut windowed = Probe::new(RandomCoordinator::new(1), 100.0).with_window(3);
        Simulation::new(cfg, 1).run(&mut windowed);
        assert!(unbounded.samples().len() > 3);
        assert_eq!(windowed.samples().len(), 3);
        // The windowed probe holds exactly the tail of the unbounded run.
        let tail = &unbounded.samples()[unbounded.samples().len() - 3..];
        assert_eq!(windowed.samples(), tail);
    }

    #[test]
    #[should_panic(expected = "sample window")]
    fn rejects_zero_window() {
        let _ = Probe::new(RandomCoordinator::new(0), 1.0).with_window(0);
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn rejects_zero_period() {
        Probe::new(RandomCoordinator::new(0), 0.0);
    }
}
