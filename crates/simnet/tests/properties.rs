//! Property-based tests for the simulator's global invariants.

use dosco_simnet::coordinator::RandomCoordinator;
use dosco_simnet::{Action, Coordinator, ScenarioConfig, SimEvent, Simulation};
use dosco_traffic::ArrivalPattern;
use proptest::prelude::*;

fn base(num_ingress: usize, pattern: ArrivalPattern, horizon: f64) -> ScenarioConfig {
    ScenarioConfig::paper_base(num_ingress)
        .with_pattern(pattern)
        .with_horizon(horizon)
}

fn patterns() -> impl Strategy<Value = ArrivalPattern> {
    prop_oneof![
        Just(ArrivalPattern::paper_fixed()),
        Just(ArrivalPattern::paper_poisson()),
        Just(ArrivalPattern::paper_mmpp()),
        Just(ArrivalPattern::paper_trace()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every arriving flow terminates at most once: completions + drops +
    /// in-flight always equals arrivals, under arbitrary (random) policies,
    /// seeds, load levels, and traffic patterns.
    #[test]
    fn flow_conservation(
        seed in 0u64..1000,
        policy_seed in 0u64..1000,
        num_ingress in 1usize..=5,
        pattern in patterns(),
    ) {
        let cfg = base(num_ingress, pattern, 1_500.0);
        let mut sim = Simulation::new(cfg, seed);
        let mut rc = RandomCoordinator::new(policy_seed);
        sim.run(&mut rc);
        let m = sim.metrics();
        prop_assert_eq!(
            m.arrived,
            m.completed + m.dropped_total() + sim.live_flows() as u64
        );
    }

    /// Node and link utilization stay within [0, capacity + ε] at every
    /// decision point, and time never runs backwards.
    #[test]
    fn utilization_bounded_and_time_monotonic(
        seed in 0u64..1000,
        policy_seed in 0u64..1000,
        num_ingress in 1usize..=5,
    ) {
        let cfg = base(num_ingress, ArrivalPattern::paper_poisson(), 1_000.0);
        let mut sim = Simulation::new(cfg, seed);
        let mut rc = RandomCoordinator::new(policy_seed);
        let mut last_t = 0.0;
        while let Some(dp) = sim.next_decision() {
            prop_assert!(dp.time >= last_t);
            last_t = dp.time;
            for v in sim.topology().node_ids() {
                let used = sim.node_used(v);
                let cap = sim.topology().node(v).capacity;
                prop_assert!(used >= 0.0 && used <= cap + 1e-6,
                    "node {v} used {used} cap {cap}");
            }
            for l in sim.topology().link_ids() {
                let used = sim.link_used(l);
                let cap = sim.topology().link(l).capacity;
                prop_assert!(used >= 0.0 && used <= cap + 1e-6,
                    "link used {used} cap {cap}");
            }
            let a = rc.decide(&sim, &dp);
            sim.apply(a);
        }
    }

    /// Event stream consistency: each flow id appears in exactly one
    /// terminal event (completed xor dropped), never both; completions
    /// respect deadlines.
    #[test]
    fn terminal_events_unique(
        seed in 0u64..1000,
        policy_seed in 0u64..1000,
        pattern in patterns(),
    ) {
        let cfg = base(3, pattern, 1_500.0);
        let mut sim = Simulation::new(cfg, seed);
        let mut rc = RandomCoordinator::new(policy_seed);
        let mut terminal = std::collections::HashMap::new();
        let mut deadline = 0.0;
        while let Some(dp) = sim.next_decision() {
            deadline = sim
                .flow(dp.flow)
                .map(|f| f.deadline)
                .unwrap_or(deadline);
            let a = rc.decide(&sim, &dp);
            sim.apply(a);
            for ev in sim.drain_events() {
                match ev {
                    SimEvent::FlowCompleted { flow, e2e_delay, .. } => {
                        prop_assert!(terminal.insert(flow, "done").is_none());
                        prop_assert!(e2e_delay <= deadline + 1e-9);
                    }
                    SimEvent::FlowDropped { flow, .. } => {
                        prop_assert!(terminal.insert(flow, "drop").is_none());
                    }
                    _ => {}
                }
            }
        }
    }

    /// The same seed pair reproduces the exact same metrics.
    #[test]
    fn determinism(seed in 0u64..100, policy_seed in 0u64..100) {
        let run = || {
            let cfg = base(2, ArrivalPattern::paper_mmpp(), 800.0);
            let mut sim = Simulation::new(cfg, seed);
            let mut rc = RandomCoordinator::new(policy_seed);
            sim.run(&mut rc).clone()
        };
        prop_assert_eq!(run(), run());
    }

    /// A coordinator that only ever picks valid forwards and local
    /// processing never triggers invalid-action drops.
    #[test]
    fn valid_actions_never_invalid_drop(seed in 0u64..200) {
        struct ValidOnly(RandomCoordinator);
        impl Coordinator for ValidOnly {
            fn decide(&mut self, sim: &Simulation, dp: &dosco_simnet::DecisionPoint) -> Action {
                match self.0.decide(sim, dp) {
                    Action::Forward(i) if i >= sim.topology().degree(dp.node) => Action::Local,
                    a => a,
                }
            }
        }
        let cfg = base(2, ArrivalPattern::paper_poisson(), 1_000.0);
        let mut sim = Simulation::new(cfg, seed);
        let mut c = ValidOnly(RandomCoordinator::new(seed));
        sim.run(&mut c);
        prop_assert_eq!(
            sim.metrics().dropped_for(dosco_simnet::DropReason::InvalidAction),
            0
        );
    }
}
