//! Simulator corner cases beyond the unit tests.

use dosco_simnet::coordinator::AlwaysLocal;
use dosco_simnet::{
    Action, Component, ComponentId, Coordinator, DropReason, IngressSpec, ScenarioConfig,
    Service, ServiceCatalog, ServiceId, Simulation,
};
use dosco_topology::{generators, NodeId};
use dosco_traffic::{ArrivalPattern, FlowProfile};

fn single_component_scenario(ingress: NodeId, egress: NodeId) -> ScenarioConfig {
    let mut topology = generators::line(3, 1.0, 10.0);
    topology.scale_capacities(10.0, 1.0);
    let catalog = ServiceCatalog::new(
        vec![Component::paper_default("c")],
        vec![Service {
            name: "s".into(),
            chain: vec![ComponentId(0)],
        }],
    )
    .unwrap();
    ScenarioConfig {
        topology,
        catalog,
        ingresses: vec![IngressSpec {
            node: ingress,
            pattern: ArrivalPattern::Fixed { interval: 20.0 },
            service: ServiceId(0),
            egress,
            profile: FlowProfile::new(1.0, 1.0, 100.0),
        }],
        horizon: 200.0,
        hold_delay: 1.0,
        capacity_seed: 0,
    }
}

#[test]
fn ingress_equals_egress_completes_in_place() {
    // Flow arrives at its egress: processing locally then the simulator
    // auto-completes without any forwarding.
    let cfg = single_component_scenario(NodeId(1), NodeId(1));
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut AlwaysLocal).clone();
    assert!(m.completed > 0);
    assert_eq!(m.forwards, 0);
    assert_eq!(m.dropped_total(), 0);
    // e2e = exactly the 5 ms processing delay.
    assert!((m.avg_e2e_delay().unwrap() - 5.0).abs() < 1e-9);
}

#[test]
fn flow_processed_at_egress_after_arrival() {
    // Egress nodes are ordinary nodes: a flow still needing its component
    // when reaching the egress processes there, then completes.
    struct ForwardThenLocal;
    impl Coordinator for ForwardThenLocal {
        fn decide(&mut self, _sim: &Simulation, dp: &dosco_simnet::DecisionPoint) -> Action {
            if dp.component.is_some() && dp.node != NodeId(2) {
                // Push unprocessed flows toward the egress first.
                Action::Forward(if dp.node == NodeId(0) { 0 } else { 1 })
            } else {
                Action::Local
            }
        }
    }
    let cfg = single_component_scenario(NodeId(0), NodeId(2));
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut ForwardThenLocal).clone();
    assert!(m.completed > 0);
    // Processing happened at the egress: 2 hops + 5 ms processing.
    assert!((m.avg_e2e_delay().unwrap() - 7.0).abs() < 1e-9);
}

#[test]
fn zero_rate_flow_needs_no_capacity() {
    let mut cfg = single_component_scenario(NodeId(0), NodeId(0));
    cfg.ingresses[0].profile = FlowProfile::new(0.0, 1.0, 100.0);
    // Even a zero-capacity node can process a zero-rate flow.
    cfg.topology.scale_capacities(0.0, 1.0);
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut AlwaysLocal).clone();
    assert!(m.completed > 0);
    assert_eq!(m.dropped_for(DropReason::NodeCapacity), 0);
}

#[test]
fn hold_delay_governs_requery_cadence() {
    // A fully processed flow held at a non-egress node is re-queried
    // every `hold_delay`; with deadline 100 and hold 5, that's ~19 holds
    // before expiry.
    let mut cfg = single_component_scenario(NodeId(0), NodeId(2));
    cfg.hold_delay = 5.0;
    cfg.horizon = 150.0;
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut AlwaysLocal).clone();
    assert_eq!(m.completed, 0);
    assert!(m.dropped_for(DropReason::DeadlineExpired) >= 1);
    // The first flow (arrives t=20, processed by t=25, expires t=120)
    // alone is held (120-25)/5 = 19 times; later flows add more. With
    // hold_delay 1.0 the count would be ~5x higher.
    assert!(m.holds >= 19, "{} holds", m.holds);
    assert!(m.holds <= 120, "{} holds (cadence too fine?)", m.holds);
}

#[test]
fn flows_expire_even_when_never_queried_again() {
    // A flow forwarded into a dead end (degree-1 leaf with no capacity)
    // still terminates by deadline expiry at its next decision.
    let mut cfg = single_component_scenario(NodeId(0), NodeId(2));
    cfg.topology.scale_capacities(0.0, 1.0); // no node can process
    cfg.horizon = 300.0;
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut AlwaysLocal).clone();
    // AlwaysLocal on a capacity-less node -> immediate node-capacity drop.
    assert_eq!(m.completed, 0);
    assert!(m.dropped_for(DropReason::NodeCapacity) > 0);
}

#[test]
fn long_duration_flows_saturate_links() {
    // Duration 50 ≫ inter-arrival 20: overlapping flows exceed the
    // link capacity of 1 and drop.
    struct AlwaysForward;
    impl Coordinator for AlwaysForward {
        fn decide(&mut self, _sim: &Simulation, dp: &dosco_simnet::DecisionPoint) -> Action {
            if dp.node == NodeId(0) {
                Action::Forward(0)
            } else {
                Action::Local
            }
        }
    }
    let mut cfg = single_component_scenario(NodeId(0), NodeId(2));
    cfg.ingresses[0].profile = FlowProfile::new(1.0, 50.0, 100.0);
    cfg.topology.scale_capacities(10.0, 0.1); // link caps 0.1*10 = 1.0
    let mut sim = Simulation::new(cfg, 1);
    let m = sim.run(&mut AlwaysForward).clone();
    assert!(
        m.dropped_for(DropReason::LinkCapacity) > 0,
        "overlapping long flows must exceed the unit link: {m:?}"
    );
}
