//! GCASP: the fully distributed heuristic of ref [11]
//! ("Every node for itself: fully distributed service coordination").
//!
//! Like the distributed DRL approach, GCASP observes and controls flows
//! locally at every node. Its hand-written rules: greedily process
//! requested components at the current node when capacity allows
//! (capacity-aware local-first), otherwise forward toward the egress
//! along shortest paths, dynamically rerouting around saturated links and
//! nodes — preferring neighbors that (a) have a usable link, (b) could
//! process the flow, and (c) lie toward the egress (Sec. V-A3/V-B).

use dosco_simnet::{Action, Coordinator, DecisionPoint, FlowId, Simulation};
use dosco_topology::NodeId;
use std::collections::HashMap;

/// The GCASP coordinator.
///
/// Keeps one piece of per-flow soft state — the node the flow came from —
/// to discourage immediate ping-pong between two saturated nodes (the
/// published heuristic's TTL/blacklist mechanism, simplified).
#[derive(Debug, Clone, Default)]
pub struct Gcasp {
    prev_node: HashMap<FlowId, NodeId>,
}

impl Gcasp {
    /// Creates the GCASP coordinator.
    pub fn new() -> Self {
        Gcasp::default()
    }

    /// Ranks forwarding candidates: usable link first, then processing
    /// capacity at the neighbor, then not bouncing back, then the smallest
    /// delay to the egress. Returns the best neighbor index, if any link
    /// can carry the flow.
    fn best_neighbor(
        &self,
        sim: &Simulation,
        dp: &DecisionPoint,
        demand: f64,
        egress: NodeId,
        rate: f64,
    ) -> Option<usize> {
        let topo = sim.topology();
        let sp = sim.shortest_paths();
        let prev = self.prev_node.get(&dp.flow).copied();
        let mut best: Option<(usize, (bool, bool, f64))> = None;
        for (idx, &(n, l)) in topo.neighbors(dp.node).iter().enumerate() {
            if sim.link_free(l) < rate {
                continue; // saturated link: reroute around it
            }
            let can_process = sim.node_free(n) >= demand;
            let bounce = prev == Some(n);
            let delay = topo.link(l).delay + sp.delay(n, egress);
            // Sort key (max-better): (can_process, !bounce, -delay).
            let key = (can_process, !bounce, -delay);
            if best
                .as_ref()
                .is_none_or(|(_, bk)| key > *bk)
            {
                best = Some((idx, key));
            }
        }
        best.map(|(idx, _)| idx)
    }
}

impl Coordinator for Gcasp {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        let flow = sim.flow(dp.flow).expect("decision refers to a live flow");
        let egress = flow.egress;
        let rate = flow.rate;
        if dp.component.is_some() {
            let demand = sim.requested_resources(dp.flow);
            // Local-first: grab free capacity where the flow already is.
            if sim.node_free(dp.node) >= demand {
                self.prev_node.remove(&dp.flow);
                return Action::Local;
            }
            // Otherwise search the neighborhood for compute resources.
            match self.best_neighbor(sim, dp, demand, egress, rate) {
                Some(idx) => {
                    self.prev_node.insert(dp.flow, dp.node);
                    Action::Forward(idx)
                }
                // Every outgoing link is saturated: the local (failing)
                // processing attempt is the only move left.
                None => Action::Local,
            }
        } else {
            // Fully processed: head for the egress, rerouting around
            // saturated links (demand 0 makes capacity moot).
            match self.best_neighbor(sim, dp, 0.0, egress, rate) {
                Some(idx) => {
                    self.prev_node.insert(dp.flow, dp.node);
                    Action::Forward(idx)
                }
                None => Action::Local, // hold and retry next step
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::{DropReason, ScenarioConfig, Simulation};
    use dosco_traffic::ArrivalPattern;

    #[test]
    fn completes_flows_on_roomy_network() {
        let mut cfg = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::Fixed { interval: 50.0 })
            .with_horizon(2_000.0);
        cfg.topology.scale_capacities(1000.0, 1000.0);
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut Gcasp::new()).clone();
        assert!(m.completed > 0);
        assert_eq!(m.dropped_total(), 0);
    }

    #[test]
    fn never_invalid_actions() {
        let cfg = ScenarioConfig::paper_base(5)
            .with_pattern(ArrivalPattern::paper_mmpp())
            .with_horizon(2_000.0);
        let mut sim = Simulation::new(cfg, 3);
        let m = sim.run(&mut Gcasp::new()).clone();
        assert_eq!(m.dropped_for(DropReason::InvalidAction), 0);
    }

    /// GCASP's defining edge over SP: when the shortest path lacks
    /// compute, it searches elsewhere and completes more flows.
    #[test]
    fn beats_sp_when_shortest_path_lacks_compute() {
        use crate::sp::ShortestPath;
        // Base scenario with default random capacities: many nodes on the
        // shortest paths cannot host instances (cap < 1).
        let cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(5_000.0);
        let run = |c: &mut dyn Coordinator| {
            let mut sim = Simulation::new(cfg.clone(), 7);
            sim.run(c).clone()
        };
        let sp = run(&mut ShortestPath::new());
        let gc = run(&mut Gcasp::new());
        assert!(
            gc.success_ratio() >= sp.success_ratio(),
            "GCASP {} should be at least SP {}",
            gc.success_ratio(),
            sp.success_ratio()
        );
    }

    /// The bounce-avoidance memory clears once a flow processes locally.
    #[test]
    fn prev_node_state_is_bounded() {
        let cfg = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(2_000.0);
        let mut sim = Simulation::new(cfg, 5);
        let mut g = Gcasp::new();
        sim.run(&mut g);
        // Soft state never exceeds the number of flows seen.
        assert!(g.prev_node.len() as u64 <= sim.metrics().arrived);
    }
}
