//! The centralized DRL baseline (Sec. V-A3, ref [10]).
//!
//! A single, logically centralized agent periodically observes the global
//! network state **through monitoring, and therefore delayed by one
//! monitoring interval** — exactly the weakness the paper's evaluation
//! exposes (Sec. V-B: "its centralized observations are always slightly
//! outdated — as they would be for any centralized approach in
//! practice!"). From each (stale) snapshot it emits coarse rules: one
//! placement/scheduling target node per service component. Between rule
//! updates, *all* flows follow the same rules along shortest paths; there
//! is no per-flow control, no dynamic routing, and no link-capacity
//! awareness. The rule policy is trained with DDPG
//! ([`dosco_rl::ddpg`]) over a continuous weight vector.

use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_rl::ddpg::{Ddpg, DdpgConfig};
use dosco_rl::env::{ContinuousEnv, StepResult};
use dosco_simnet::{Action, Coordinator, DecisionPoint, ScenarioConfig, SimEvent, Simulation};
use dosco_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration of the centralized baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralConfig {
    /// Monitoring period: rules are refreshed this often, from data this
    /// stale (cf. Prometheus' default 1 min scrape interval [29]).
    pub monitor_interval: f64,
    /// DDPG hyperparameters for rule training.
    pub ddpg: DdpgConfig,
    /// Environment steps (= rule updates) to train for.
    pub train_steps: usize,
    /// Training seed.
    pub seed: u64,
}

impl Default for CentralConfig {
    fn default() -> Self {
        CentralConfig {
            monitor_interval: 100.0,
            ddpg: DdpgConfig {
                hidden: [64, 64],
                warmup: 64,
                batch_size: 32,
                ..DdpgConfig::default()
            },
            train_steps: 2_000,
            seed: 0,
        }
    }
}

/// Global monitoring snapshot: per-node utilization fractions in `[0, 1]`.
fn snapshot(sim: &Simulation) -> Vec<f32> {
    sim.topology()
        .node_ids()
        .map(|v| {
            let cap = sim.topology().node(v).capacity;
            if cap <= 0.0 {
                1.0
            } else {
                (sim.node_used(v) / cap).clamp(0.0, 1.0) as f32
            }
        })
        .collect()
}

/// Decodes an action weight vector into one target node per component:
/// `target_i = argmax_v w[v·C + i]`.
fn decode_targets(weights: &[f32], num_nodes: usize, num_components: usize) -> Vec<NodeId> {
    (0..num_components)
        .map(|i| {
            let mut best = (NodeId(0), f32::NEG_INFINITY);
            for v in 0..num_nodes {
                let w = weights[v * num_components + i];
                if w > best.1 {
                    best = (NodeId(v), w);
                }
            }
            best.0
        })
        .collect()
}

/// The coarse per-flow rule: walk the shortest path to the current
/// component's target node, process there, repeat; fully processed flows
/// walk the shortest path to their egress. No capacity awareness.
fn rule_decide(sim: &Simulation, dp: &DecisionPoint, targets: &[NodeId]) -> Action {
    let flow = sim.flow(dp.flow).expect("decision refers to a live flow");
    let destination = match dp.component {
        Some(c) => targets[c.0],
        None => flow.egress,
    };
    if destination == dp.node {
        return Action::Local;
    }
    match sim.shortest_paths().next_hop(dp.node, destination) {
        Some(hop) => {
            let idx = sim
                .topology()
                .neighbors(dp.node)
                .iter()
                .position(|&(n, _)| n == hop)
                .expect("next hop is a neighbor");
            Action::Forward(idx)
        }
        None => Action::Local, // unreachable target: fail in place
    }
}

/// The trained centralized rule policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralPolicy {
    actor: Mlp,
    /// Monitoring period the policy was trained for.
    pub monitor_interval: f64,
    /// Number of components it schedules.
    pub num_components: usize,
    /// Number of nodes it observes.
    pub num_nodes: usize,
}

impl CentralPolicy {
    /// The rule actor network.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// Computes the component targets for a (stale) snapshot. This is the
    /// *centralized* inference step whose cost scales with the network
    /// size (Fig. 9b).
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.len() != num_nodes`.
    pub fn rules_for(&self, snapshot: &[f32]) -> Vec<NodeId> {
        assert_eq!(snapshot.len(), self.num_nodes, "snapshot length mismatch");
        let out = self.actor.forward(&Matrix::row_vector(snapshot));
        let weights: Vec<f32> = out.row(0).iter().map(|v| v.tanh()).collect();
        decode_targets(&weights, self.num_nodes, self.num_components)
    }
}

/// The deployed centralized coordinator: refreshes rules every monitoring
/// interval from the *previous* interval's snapshot, then applies them to
/// every flow until the next refresh.
#[derive(Debug, Clone)]
pub struct CentralizedCoordinator {
    policy: CentralPolicy,
    targets: Vec<NodeId>,
    /// Snapshot taken at the last refresh, consumed (stale) at the next.
    pending_snapshot: Vec<f32>,
    next_update: f64,
    /// Number of rule recomputations (diagnostics).
    pub rule_updates: u64,
}

impl CentralizedCoordinator {
    /// Deploys a trained central policy.
    pub fn new(policy: CentralPolicy) -> Self {
        let targets = vec![NodeId(0); policy.num_components];
        CentralizedCoordinator {
            pending_snapshot: vec![0.0; policy.num_nodes],
            policy,
            targets,
            next_update: f64::NEG_INFINITY,
            rule_updates: 0,
        }
    }

    /// Current component targets (diagnostics).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }
}

impl Coordinator for CentralizedCoordinator {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        if dp.time >= self.next_update {
            // Rules derive from the snapshot collected at the previous
            // refresh — one monitoring interval old.
            self.targets = self.policy.rules_for(&self.pending_snapshot);
            self.pending_snapshot = snapshot(sim);
            self.next_update = dp.time + self.policy.monitor_interval;
            self.rule_updates += 1;
        }
        rule_decide(sim, dp, &self.targets)
    }
}

/// Training environment for the rule policy: one step = one monitoring
/// interval. Observations are the (stale) snapshot from the interval
/// start; the reward is `+1` per completed and `−1` per dropped flow in
/// the interval, normalized by the interval's expected arrivals.
#[derive(Debug)]
pub struct CentralRuleEnv {
    scenario: ScenarioConfig,
    monitor_interval: f64,
    sim: Simulation,
    base_seed: u64,
    episode: u64,
    num_components: usize,
}

impl CentralRuleEnv {
    /// Creates the training environment.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid.
    pub fn new(scenario: ScenarioConfig, monitor_interval: f64, base_seed: u64) -> Self {
        let num_components = scenario.catalog.num_components();
        let sim = Simulation::new(scenario.clone(), base_seed);
        CentralRuleEnv {
            scenario,
            monitor_interval,
            sim,
            base_seed,
            episode: 0,
            num_components,
        }
    }

    fn fresh(&mut self) -> Vec<f32> {
        self.episode += 1;
        let seed = self
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.episode);
        self.sim = Simulation::new(self.scenario.clone(), seed);
        snapshot(&self.sim)
    }
}

impl ContinuousEnv for CentralRuleEnv {
    fn obs_dim(&self) -> usize {
        self.scenario.topology.num_nodes()
    }

    fn action_dim(&self) -> usize {
        self.scenario.topology.num_nodes() * self.num_components
    }

    fn reset(&mut self) -> Vec<f32> {
        self.fresh()
    }

    fn step(&mut self, action: &[f32]) -> StepResult {
        assert_eq!(action.len(), self.action_dim(), "action length mismatch");
        let targets = decode_targets(
            action,
            self.scenario.topology.num_nodes(),
            self.num_components,
        );
        // The snapshot the *next* rule update will act on: state at the
        // start of this interval (stale by one interval at use time).
        let stale_obs = snapshot(&self.sim);
        let until = self.sim.time() + self.monitor_interval;
        let mut reward = 0.0f32;
        let mut done = false;
        loop {
            match self.sim.next_decision() {
                Some(dp) if dp.time <= until => {
                    let a = rule_decide(&self.sim, &dp, &targets);
                    self.sim.apply(a);
                }
                Some(_) => break,
                None => {
                    done = true;
                    break;
                }
            }
            for ev in self.sim.drain_events() {
                match ev {
                    SimEvent::FlowCompleted { .. } => reward += 1.0,
                    SimEvent::FlowDropped { .. } => reward -= 1.0,
                    _ => {}
                }
            }
        }
        // Normalize so rewards stay O(1) regardless of the interval.
        let expected_arrivals = (self.monitor_interval / 10.0) as f32
            * self.scenario.ingresses.len() as f32;
        reward /= expected_arrivals.max(1.0);
        let obs = if done { self.fresh() } else { stale_obs };
        StepResult { obs, reward, done }
    }
}

/// Trains the centralized baseline on a scenario with DDPG and returns
/// the deployable rule policy.
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn train_central(scenario: &ScenarioConfig, config: &CentralConfig) -> CentralPolicy {
    scenario.validate().expect("scenario must be valid");
    let mut env = CentralRuleEnv::new(scenario.clone(), config.monitor_interval, config.seed);
    let mut agent = Ddpg::new(env.obs_dim(), env.action_dim(), config.ddpg, config.seed);
    agent.train(&mut env, config.train_steps);
    CentralPolicy {
        actor: agent.actor().clone(),
        monitor_interval: config.monitor_interval,
        num_components: scenario.catalog.num_components(),
        num_nodes: scenario.topology.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_traffic::ArrivalPattern;

    #[test]
    fn decode_targets_picks_argmax_per_component() {
        // 3 nodes x 2 components, row-major [v0c0, v0c1, v1c0, v1c1, ...].
        let w = vec![0.1, 0.9, 0.8, 0.2, 0.3, 0.5];
        let t = decode_targets(&w, 3, 2);
        assert_eq!(t, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn rule_env_dimensions() {
        let scenario = ScenarioConfig::paper_base(2).with_horizon(500.0);
        let env = CentralRuleEnv::new(scenario, 100.0, 1);
        assert_eq!(env.obs_dim(), 11);
        assert_eq!(env.action_dim(), 33);
    }

    #[test]
    fn rule_env_episodes_terminate() {
        let scenario = ScenarioConfig::paper_base(1)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(400.0);
        let mut env = CentralRuleEnv::new(scenario, 100.0, 1);
        let obs = env.reset();
        assert_eq!(obs.len(), 11);
        let action = vec![0.0; env.action_dim()];
        let mut steps = 0;
        loop {
            let r = env.step(&action);
            steps += 1;
            assert!(r.reward.is_finite());
            if r.done {
                break;
            }
            assert!(steps < 50, "episode should end within the horizon");
        }
        // 400 time units / 100 interval = ~4-5 rule updates per episode.
        assert!((3..=6).contains(&steps), "{steps} steps");
    }

    #[test]
    fn training_produces_deployable_policy() {
        let scenario = ScenarioConfig::paper_base(1)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(300.0);
        let config = CentralConfig {
            train_steps: 80,
            ddpg: DdpgConfig {
                hidden: [8, 8],
                warmup: 16,
                batch_size: 8,
                ..DdpgConfig::default()
            },
            ..CentralConfig::default()
        };
        let policy = train_central(&scenario, &config);
        assert_eq!(policy.num_nodes, 11);
        assert_eq!(policy.num_components, 3);

        // Deploy and run a full episode.
        let mut coord = CentralizedCoordinator::new(policy);
        let mut sim = Simulation::new(scenario, 9);
        let m = sim.run(&mut coord).clone();
        assert!(m.arrived > 0);
        assert!(coord.rule_updates >= 3, "{} rule updates", coord.rule_updates);
        assert_eq!(coord.targets().len(), 3);
    }

    #[test]
    fn rules_are_stale_by_one_interval() {
        // The snapshot consumed at update k is the one collected at
        // update k-1: verify via the pending_snapshot bookkeeping.
        let scenario = ScenarioConfig::paper_base(1).with_horizon(500.0);
        let config = CentralConfig {
            train_steps: 10,
            ddpg: DdpgConfig {
                hidden: [4, 4],
                warmup: 4,
                batch_size: 2,
                ..DdpgConfig::default()
            },
            ..CentralConfig::default()
        };
        let policy = train_central(&scenario, &config);
        let mut coord = CentralizedCoordinator::new(policy);
        // Initially the pending snapshot is all-zeros (no knowledge).
        assert!(coord.pending_snapshot.iter().all(|&v| v == 0.0));
        let mut sim = Simulation::new(scenario, 2);
        if let Some(dp) = sim.next_decision() {
            let _ = coord.decide(&sim, &dp);
        }
        assert_eq!(coord.rule_updates, 1);
    }

    #[test]
    fn central_never_emits_invalid_actions() {
        let scenario = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_mmpp())
            .with_horizon(1_500.0);
        let config = CentralConfig {
            train_steps: 30,
            ddpg: DdpgConfig {
                hidden: [4, 4],
                warmup: 8,
                batch_size: 4,
                ..DdpgConfig::default()
            },
            ..CentralConfig::default()
        };
        let policy = train_central(&scenario, &config);
        let mut coord = CentralizedCoordinator::new(policy);
        let mut sim = Simulation::new(scenario, 5);
        let m = sim.run(&mut coord).clone();
        assert_eq!(
            m.dropped_for(dosco_simnet::DropReason::InvalidAction),
            0
        );
    }
}
