//! The compared algorithms from the paper's evaluation (Sec. V-A3):
//!
//! - [`sp::ShortestPath`] — the greedy "SP" baseline that processes every
//!   flow along the shortest path from ingress to egress,
//! - [`gcasp::Gcasp`] — a reimplementation of the fully distributed
//!   heuristic of ref [11] ("every node for itself"): local-first
//!   processing, shortest-path orientation, dynamic rerouting around
//!   saturated nodes and links,
//! - [`central`] — the centralized DRL approach of ref [10]: a single
//!   agent observing *delayed* global monitoring snapshots, periodically
//!   emitting coarse forwarding/placement rules that all flows follow
//!   along shortest paths, trained with DDPG.
//!
//! All three implement [`dosco_simnet::Coordinator`] and run on the same
//! simulator and scenarios as the distributed DRL approach.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod central;
pub mod gcasp;
pub mod sp;

pub use central::{train_central, CentralConfig, CentralPolicy, CentralizedCoordinator};
pub use gcasp::Gcasp;
pub use sp::{sp_action, ShortestPath};
