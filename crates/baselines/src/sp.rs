//! The greedy shortest-path baseline "SP" (Sec. V-A3).
//!
//! SP tries to process all flows along the shortest path from ingress to
//! egress: process the requested component at the current node whenever
//! its free capacity allows, otherwise move on along the shortest path.
//! It neither balances load nor routes around bottlenecks, so it "relies
//! on sufficient resources along the shortest path and thus easily drops
//! flows" (Sec. V-B).

use dosco_simnet::{Action, Coordinator, DecisionPoint, Simulation};

/// The SP coordinator. Stateless: every decision is derived from the
/// precomputed shortest paths and current local capacities.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPath;

impl ShortestPath {
    /// Creates the SP coordinator.
    pub fn new() -> Self {
        ShortestPath
    }

    /// Index of `hop` in `node`'s neighbor list, as a forward action.
    fn forward_to(sim: &Simulation, node: dosco_topology::NodeId, hop: dosco_topology::NodeId) -> Action {
        let idx = sim
            .topology()
            .neighbors(node)
            .iter()
            .position(|&(n, _)| n == hop)
            .expect("next hop is a neighbor by construction");
        Action::Forward(idx)
    }
}

/// One-shot SP decision without holding a coordinator: SP is stateless,
/// so a single decision can be answered from the simulation alone. This
/// is the degradation path of the `dosco_serve` fabric — when a node's
/// inference shard is down, its decisions fall back to shortest-path
/// coordination until the shard recovers.
pub fn sp_action(sim: &Simulation, dp: &DecisionPoint) -> Action {
    ShortestPath::new().decide(sim, dp)
}

impl Coordinator for ShortestPath {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        let flow = sim.flow(dp.flow).expect("decision refers to a live flow");
        if dp.component.is_some() {
            // Process here if the node can take it; otherwise continue
            // along the shortest path and try the next node.
            let demand = sim.requested_resources(dp.flow);
            if sim.node_free(dp.node) >= demand {
                return Action::Local;
            }
            match sim.shortest_paths().next_hop(dp.node, flow.egress) {
                Some(hop) => Self::forward_to(sim, dp.node, hop),
                // Already at the egress with no capacity left: processing
                // locally is the only (failing) option.
                None => Action::Local,
            }
        } else {
            // Fully processed: head straight to the egress.
            match sim.shortest_paths().next_hop(dp.node, flow.egress) {
                Some(hop) => Self::forward_to(sim, dp.node, hop),
                None => Action::Local, // at egress; simulator completes it
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::{DropReason, ScenarioConfig, Simulation};
    use dosco_topology::NodeId;
    use dosco_traffic::ArrivalPattern;

    /// With ample capacities, SP completes every flow at the minimum
    /// possible end-to-end delay.
    #[test]
    fn completes_flows_on_roomy_network() {
        let mut cfg = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::Fixed { interval: 50.0 })
            .with_horizon(2_000.0);
        cfg.topology.scale_capacities(1000.0, 1000.0);
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut ShortestPath::new()).clone();
        assert!(m.completed > 0);
        assert_eq!(m.dropped_total(), 0);
        // e2e = 15 ms processing + path delay; v1 (NY) is one ~1.6 ms hop,
        // v2 (Chicago) ~7.4 ms: average far below the 100 ms deadline and
        // around the paper's 21 ms (Fig. 7).
        let avg = m.avg_e2e_delay().unwrap();
        assert!(avg > 15.0 && avg < 26.0, "avg e2e {avg}");
    }

    /// With tight capacity on the shortest path, SP drops instead of
    /// routing around (its defining weakness).
    #[test]
    fn drops_on_congested_shortest_path() {
        // High load (one flow per ms per ingress) so concurrent flows
        // overlap on the shared NY->DC link; plenty of compute so the
        // only bottleneck is link capacity.
        let mut cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::Fixed { interval: 1.0 })
            .with_horizon(3_000.0);
        cfg.topology.scale_capacities(1000.0, 1.0);
        for l in 0..cfg.topology.num_links() {
            assert!(cfg.topology.link(dosco_topology::LinkId(l)).capacity <= 5.0);
        }
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut ShortestPath::new()).clone();
        assert!(
            m.dropped_for(DropReason::LinkCapacity) > 0,
            "expected link-capacity drops, got {m:?}"
        );
    }

    /// SP never emits invalid actions.
    #[test]
    fn never_invalid() {
        let cfg = ScenarioConfig::paper_base(5)
            .with_pattern(ArrivalPattern::paper_mmpp())
            .with_horizon(2_000.0);
        let mut sim = Simulation::new(cfg, 2);
        let m = sim.run(&mut ShortestPath::new()).clone();
        assert_eq!(m.dropped_for(DropReason::InvalidAction), 0);
    }

    /// The first flow from v1 (New York) is processed at the ingress and
    /// forwarded straight to Washington DC.
    #[test]
    fn follows_shortest_path_hops() {
        let mut cfg = ScenarioConfig::paper_base(1).with_horizon(100.0);
        cfg.topology.scale_capacities(1000.0, 1000.0);
        let mut sim = Simulation::new(cfg, 1);
        let mut sp = ShortestPath::new();
        // First decision: flow at v1 requesting FW, capacity fine -> Local.
        let dp = sim.next_decision().unwrap();
        assert_eq!(dp.node, NodeId(0));
        assert_eq!(sp.decide(&sim, &dp), Action::Local);
    }
}
