//! Multi-seed training with best-agent selection (Alg. 1 ln. 13).
//!
//! Random seeds have a significant impact on DRL convergence (Henderson et
//! al. [43]); the paper therefore trains `k = 10` agents with different
//! seeds in parallel and deploys the one with the highest reward. This
//! module runs the per-seed training closures on crossbeam scoped threads.

use crossbeam::thread;

/// The outcome of one seed's training run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedResult<A> {
    /// The training seed.
    pub seed: u64,
    /// The selection score (higher is better; e.g. tail mean reward or an
    /// evaluation success ratio).
    pub score: f32,
    /// The trained agent.
    pub agent: A,
}

/// Trains one agent per seed in parallel and returns the results sorted
/// best-first.
///
/// `train` maps a seed to `(agent, score)`; it must be `Sync` because the
/// closure is shared across threads.
///
/// # Panics
///
/// Panics if `seeds` is empty, or if any training thread panics.
///
/// # Example
///
/// ```
/// let results = dosco_rl::train_multi_seed(&[1, 2, 3], |seed| {
///     // toy "training": the agent is the seed, the score favors seed 2
///     (seed, if seed == 2 { 1.0 } else { 0.0 })
/// });
/// assert_eq!(results[0].agent, 2);
/// ```
pub fn train_multi_seed<A, F>(seeds: &[u64], train: F) -> Vec<SeedResult<A>>
where
    A: Send,
    F: Fn(u64) -> (A, f32) + Sync,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut results: Vec<SeedResult<A>> = thread::scope(|s| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let train = &train;
                s.spawn(move |_| {
                    let (agent, score) = train(seed);
                    SeedResult { seed, score, agent }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("training thread panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");
    results.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn returns_sorted_best_first() {
        let results = train_multi_seed(&[10, 20, 30, 40], |seed| (seed, seed as f32));
        let scores: Vec<f32> = results.iter().map(|r| r.score).collect();
        assert_eq!(scores, vec![40.0, 30.0, 20.0, 10.0]);
        assert_eq!(results[0].agent, 40);
        assert_eq!(results[0].seed, 40);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let count = AtomicUsize::new(0);
        let results = train_multi_seed(&[1, 2, 3, 4, 5], |seed| {
            count.fetch_add(1, Ordering::SeqCst);
            (seed, 0.0)
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
        let mut seeds: Vec<u64> = results.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_list() {
        let _ = train_multi_seed(&[], |s| (s, 0.0));
    }

    /// A panicking seed closure propagates out of `train_multi_seed`
    /// instead of being swallowed by the worker thread.
    #[test]
    #[should_panic(expected = "training thread panicked")]
    fn propagates_seed_closure_panics() {
        let _ = train_multi_seed(&[1, 2, 3], |seed| {
            if seed == 2 {
                panic!("seed 2 exploded");
            }
            (seed, 0.0)
        });
    }

    #[test]
    fn actually_trains_rl_agents_in_parallel() {
        use crate::a2c::{A2c, A2cConfig};
        use crate::env::testenvs::Corridor;
        use crate::env::Env;
        let results = train_multi_seed(&[1, 2], |seed| {
            let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(4))];
            let cfg = A2cConfig {
                hidden: [8, 8],
                ..A2cConfig::default()
            };
            let mut agent = A2c::new(1, 2, cfg, seed);
            let stats = agent.train(&mut envs, 2_000);
            let score = stats.tail_mean(10);
            (agent, score)
        });
        assert_eq!(results.len(), 2);
        assert!(results[0].score >= results[1].score);
    }
}
