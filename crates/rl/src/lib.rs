//! Reinforcement-learning algorithms on the [`dosco_nn`] substrate.
//!
//! The paper trains its distributed agents with **ACKTR** (actor-critic
//! using Kronecker-factored trust regions, Wu et al. [38]) over `l`
//! parallel environment copies, selecting the best of `k` random seeds
//! (Sec. IV-C2, Alg. 1). This crate implements that pipeline plus the
//! algorithms needed by the baselines and ablations:
//!
//! - [`env`]: Gym-style [`env::Env`] (discrete actions) and
//!   [`env::ContinuousEnv`] traits,
//! - [`rollout`]: n-step rollout collection across parallel envs with
//!   bootstrapped returns and GAE,
//! - [`a2c`]: synchronous advantage actor-critic (the A3C update of [39],
//!   synchronous variant) with RMSprop,
//! - [`acktr`]: A2C with K-FAC natural gradients and a KL trust region —
//!   the paper's training algorithm,
//! - [`ppo`]: PPO-clip, as an ablation alternative,
//! - [`ddpg`]: deep deterministic policy gradient (replay buffer, target
//!   networks, OU exploration noise) — used by the centralized baseline's
//!   continuous rule-update policy,
//! - [`trainer`]: multi-seed training with best-agent selection
//!   (Alg. 1 ln. 13), parallelized with crossbeam.
//!
//! # Example
//!
//! ```
//! use dosco_rl::a2c::{A2c, A2cConfig};
//! use dosco_rl::env::{Env, StepResult};
//!
//! // A two-armed bandit: action 1 pays off.
//! struct Bandit;
//! impl Env for Bandit {
//!     fn obs_dim(&self) -> usize { 1 }
//!     fn num_actions(&self) -> usize { 2 }
//!     fn reset(&mut self) -> Vec<f32> { vec![0.0] }
//!     fn step(&mut self, action: usize) -> StepResult {
//!         StepResult { obs: vec![0.0], reward: if action == 1 { 1.0 } else { 0.0 }, done: true }
//!     }
//! }
//!
//! let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Bandit), Box::new(Bandit)];
//! let cfg = A2cConfig { lr: 0.05, hidden: [16, 16], ..A2cConfig::default() };
//! let mut agent = A2c::new(1, 2, cfg, 0);
//! agent.train(&mut envs, 4_000);
//! assert_eq!(agent.act_greedy(&[0.0]), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod a2c;
pub mod acktr;
pub mod ddpg;
pub mod env;
pub mod ppo;
pub mod rollout;
pub mod schedule;
pub mod trainer;

pub use a2c::{A2c, A2cConfig};
pub use acktr::{Acktr, AcktrConfig};
pub use ddpg::{Ddpg, DdpgConfig};
pub use env::{ContinuousEnv, Env, StepResult};
pub use ppo::{Ppo, PpoConfig};
pub use trainer::{train_multi_seed, SeedResult};
