//! ACKTR: actor-critic using Kronecker-factored trust regions
//! (Wu et al., NeurIPS 2017 [38]) — the paper's training algorithm
//! (Sec. IV-C2).
//!
//! The update is the A2C gradient preconditioned per layer by K-FAC
//! natural-gradient factors, with the step size rescaled to respect a KL
//! trust region. The Fisher factors are estimated from gradients sampled
//! from the model's own predictive distribution: categorical sampling for
//! the actor, unit-Gaussian sampling for the critic's value head.

use crate::a2c::{actor_critic_gradients, TrainStats};
use crate::env::Env;
use crate::rollout::{Rollout, RolloutCollector};
use dosco_nn::kfac::{Kfac, KfacConfig};
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::Categorical;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// ACKTR hyperparameters (paper values in Sec. V-A2 as defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcktrConfig {
    /// Discount factor γ (paper: 0.99).
    pub gamma: f32,
    /// GAE λ (1.0 = plain n-step returns).
    pub gae_lambda: f32,
    /// Natural-gradient learning rate (paper: 0.25).
    pub lr: f32,
    /// Entropy bonus coefficient (paper: 0.01).
    pub ent_coef: f32,
    /// Value-loss coefficient (paper: 0.25).
    pub vf_coef: f32,
    /// Global gradient-norm clip (paper: 0.5).
    pub max_grad_norm: f32,
    /// KL trust region (paper: 0.001).
    pub kl_clip: f32,
    /// K-FAC damping.
    pub damping: f64,
    /// K-FAC factor moving-average decay.
    pub stat_decay: f32,
    /// Recompute factor inverses every this many updates.
    pub inverse_period: u32,
    /// Steps collected per env per update.
    pub n_steps: usize,
    /// Hidden layer sizes (paper: [256, 256]).
    pub hidden: [usize; 2],
    /// Normalize advantages per batch.
    pub normalize_advantages: bool,
    /// Linearly decay the learning rate to 10 % of its initial value over
    /// the training horizon (stable-baselines' ACKTR default schedule).
    pub lr_decay: bool,
}

impl Default for AcktrConfig {
    fn default() -> Self {
        AcktrConfig {
            gamma: 0.99,
            gae_lambda: 1.0,
            lr: 0.25,
            ent_coef: 0.01,
            vf_coef: 0.25,
            max_grad_norm: 0.5,
            kl_clip: 0.001,
            damping: 0.01,
            stat_decay: 0.95,
            inverse_period: 20,
            n_steps: 16,
            hidden: [256, 256],
            normalize_advantages: false,
            lr_decay: true,
        }
    }
}

impl AcktrConfig {
    fn kfac(&self) -> KfacConfig {
        KfacConfig {
            lr: self.lr,
            kl_clip: self.kl_clip,
            damping: self.damping,
            stat_decay: self.stat_decay,
            inverse_period: self.inverse_period,
            max_grad_norm: self.max_grad_norm,
        }
    }
}

/// The full per-batch ACKTR update (advantage normalization, A2C
/// gradients, Fisher-factor statistics from model-sampled gradients,
/// natural-gradient steps). Free function over destructured fields so the
/// serial `train` loop and the runtime-facing [`Acktr::update_batch`]
/// share one code path under disjoint borrows.
#[allow(clippy::too_many_arguments)]
fn update_impl(
    actor: &mut Mlp,
    critic: &mut Mlp,
    actor_kfac: &mut Kfac,
    critic_kfac: &mut Kfac,
    config: &AcktrConfig,
    rollout: &mut Rollout,
    rng: &mut StdRng,
) {
    if config.normalize_advantages {
        rollout.normalize_advantages();
    }
    let (actor_grads, critic_grads, actor_cache, critic_cache) =
        actor_critic_gradients(actor, critic, rollout, config.ent_coef, config.vf_coef);

    // Fisher factor statistics from model-sampled gradients.
    let batch = rollout.actions.len();
    let actor_fisher_out = Categorical::new(&actor_cache.output).fisher_sample_logits(rng);
    let actor_fisher = actor.backward(&actor_cache, &actor_fisher_out);
    let afg: Vec<&Matrix> = actor_fisher.layers.iter().map(|l| &l.preact_grads).collect();
    actor_kfac.update_stats(&actor_cache, &afg);

    // Critic value head: Gaussian likelihood ⇒ Fisher gradient is
    // standard normal noise (Wu et al., Sec. 3).
    let critic_fisher_out = Matrix::from_fn(batch, 1, |_, _| {
        let u1: f32 = rng.gen_range(1e-6..1.0f32);
        let u2: f32 = rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()) / batch as f32
    });
    let critic_fisher = critic.backward(&critic_cache, &critic_fisher_out);
    let cfg: Vec<&Matrix> = critic_fisher.layers.iter().map(|l| &l.preact_grads).collect();
    critic_kfac.update_stats(&critic_cache, &cfg);

    // Natural-gradient steps with the trust region.
    actor_kfac
        .step(actor, &actor_grads)
        .expect("actor K-FAC inversion failed; increase damping");
    critic_kfac
        .step(critic, &critic_grads)
        .expect("critic K-FAC inversion failed; increase damping");
}

/// The ACKTR agent.
#[derive(Debug)]
pub struct Acktr {
    actor: Mlp,
    critic: Mlp,
    actor_kfac: Kfac,
    critic_kfac: Kfac,
    config: AcktrConfig,
    rng: StdRng,
}

impl Acktr {
    /// Creates an ACKTR agent with all randomness derived from `seed`.
    pub fn new(obs_dim: usize, num_actions: usize, config: AcktrConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], num_actions],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let critic = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], 1],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let actor_kfac = Kfac::new(&actor, config.kfac());
        let critic_kfac = Kfac::new(&critic, config.kfac());
        Acktr {
            actor,
            critic,
            actor_kfac,
            critic_kfac,
            config,
            rng,
        }
    }

    /// The actor network (the deployable policy).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The critic network.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// The configuration.
    pub fn config(&self) -> &AcktrConfig {
        &self.config
    }

    /// Overwrites the current learning rate (external schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.actor_kfac.set_lr(lr);
        self.critic_kfac.set_lr(lr);
    }

    /// Greedy (argmax) action for one observation.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` mismatches the observation dimension.
    pub fn act_greedy(&self, obs: &[f32]) -> usize {
        let logits = self.actor.forward(&Matrix::row_vector(obs));
        Categorical::new(&logits).argmax()[0]
    }

    /// Trains for (at least) `total_steps` transitions across `envs`
    /// (Alg. 1 ln. 3–12).
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or dimensions mismatch.
    pub fn train(&mut self, envs: &mut [Box<dyn Env>], total_steps: usize) -> TrainStats {
        let mut collector = RolloutCollector::new(envs);
        let mut stats = TrainStats::default();
        let per_update = self.config.n_steps * envs.len();
        while stats.total_steps < total_steps {
            if self.config.lr_decay {
                let frac = stats.total_steps as f32 / total_steps as f32;
                let lr = self.config.lr * (1.0 - 0.9 * frac);
                self.actor_kfac.set_lr(lr);
                self.critic_kfac.set_lr(lr);
            }
            let mut rollout = collector.collect(
                envs,
                &self.actor,
                &self.critic,
                self.config.n_steps,
                self.config.gamma,
                self.config.gae_lambda,
                &mut self.rng,
            );
            // The Fisher sampling below continues the same RNG stream that
            // collection consumed — the property the runtime's sync mode
            // preserves by circulating the RNG with each batch.
            let Acktr {
                actor,
                critic,
                actor_kfac,
                critic_kfac,
                config,
                rng,
            } = self;
            update_impl(actor, critic, actor_kfac, critic_kfac, config, &mut rollout, rng);
            stats.mean_rewards.push(rollout.mean_reward());
            stats.total_steps += per_update;
        }
        stats
    }

    /// One K-FAC update from an externally collected rollout — the
    /// learner-side entry point of the actor–learner runtime, identical to
    /// the per-batch update of the serial [`Acktr::train`] loop. `rng`
    /// drives the Fisher-factor sampling; for bit-identical sync-mode
    /// training it must be the same stream that collected the rollout.
    pub fn update_batch(&mut self, rollout: &mut Rollout, rng: &mut StdRng) {
        let Acktr {
            actor,
            critic,
            actor_kfac,
            critic_kfac,
            config,
            ..
        } = self;
        update_impl(actor, critic, actor_kfac, critic_kfac, config, rollout, rng);
    }

    /// Moves the sampling RNG out of the agent so an external collection
    /// loop (the runtime's actor thread) can continue the same stream;
    /// pair with [`Acktr::restore_rng`].
    pub fn take_rng(&mut self) -> StdRng {
        std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0))
    }

    /// Restores the sampling RNG after [`Acktr::take_rng`].
    pub fn restore_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }

    /// Replaces the actor (e.g. loading a saved policy).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn set_actor(&mut self, actor: Mlp) {
        assert_eq!(actor.inputs(), self.actor.inputs(), "obs dim mismatch");
        assert_eq!(actor.outputs(), self.actor.outputs(), "action dim mismatch");
        self.actor = actor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenvs::Corridor;

    #[test]
    fn learns_corridor() {
        let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Corridor::new(6)) as _).collect();
        let cfg = AcktrConfig {
            n_steps: 8,
            hidden: [32, 32],
            ..AcktrConfig::default()
        };
        let mut agent = Acktr::new(1, 2, cfg, 3);
        let stats = agent.train(&mut envs, 15_000);
        for pos in [0.0f32, 0.25, 0.5, 0.75] {
            assert_eq!(agent.act_greedy(&[pos]), 1, "at pos {pos}");
        }
        let early = stats.mean_rewards[..10].iter().sum::<f32>() / 10.0;
        assert!(stats.tail_mean(10) > early);
    }

    #[test]
    fn deterministic_under_seed() {
        let train = |seed| {
            let mut envs: Vec<Box<dyn Env>> =
                vec![Box::new(Corridor::new(5)), Box::new(Corridor::new(5))];
            let cfg = AcktrConfig {
                hidden: [8, 8],
                ..AcktrConfig::default()
            };
            let mut agent = Acktr::new(1, 2, cfg, seed);
            agent.train(&mut envs, 400).mean_rewards
        };
        assert_eq!(train(7), train(7));
        assert_ne!(train(7), train(8));
    }

    #[test]
    fn paper_defaults_match_section_v() {
        let cfg = AcktrConfig::default();
        assert_eq!(cfg.gamma, 0.99);
        assert_eq!(cfg.lr, 0.25);
        assert_eq!(cfg.ent_coef, 0.01);
        assert_eq!(cfg.vf_coef, 0.25);
        assert_eq!(cfg.max_grad_norm, 0.5);
        assert_eq!(cfg.kl_clip, 0.001);
        assert_eq!(cfg.hidden, [256, 256]);
    }
}
