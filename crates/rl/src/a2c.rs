//! Synchronous advantage actor-critic (A2C) with RMSprop.
//!
//! A2C is the synchronous variant of A3C (Mnih et al. [39]) that ACKTR
//! extends: n-step rollouts from `l` parallel environments, a categorical
//! actor, a state-value critic trained by temporal difference, and an
//! entropy bonus. This is the "plain gradient" half of the paper's
//! training algorithm and an ablation point versus ACKTR.

use crate::env::Env;
use crate::rollout::{Rollout, RolloutCollector};
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Gradients, Mlp};
use dosco_nn::optim::{Optimizer, RmsProp};
use dosco_nn::Categorical;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A2C hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A2cConfig {
    /// Discount factor γ (paper: 0.99).
    pub gamma: f32,
    /// GAE λ (1.0 = plain n-step returns).
    pub gae_lambda: f32,
    /// RMSprop learning rate.
    pub lr: f32,
    /// Entropy bonus coefficient (paper: 0.01).
    pub ent_coef: f32,
    /// Value-loss coefficient (paper: 0.25).
    pub vf_coef: f32,
    /// Global gradient-norm clip (paper: 0.5).
    pub max_grad_norm: f32,
    /// Steps collected per env per update.
    pub n_steps: usize,
    /// Hidden layer sizes for actor and critic (paper: [256, 256]).
    pub hidden: [usize; 2],
    /// Normalize advantages per batch.
    pub normalize_advantages: bool,
    /// Linearly decay the learning rate to 10 % of its initial value over
    /// the training horizon.
    pub lr_decay: bool,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: 0.99,
            gae_lambda: 1.0,
            lr: 7e-3,
            ent_coef: 0.01,
            vf_coef: 0.25,
            max_grad_norm: 0.5,
            n_steps: 16,
            hidden: [256, 256],
            normalize_advantages: false,
            lr_decay: false,
        }
    }
}

/// Per-update training statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean reward per transition, one entry per update.
    pub mean_rewards: Vec<f32>,
    /// Total environment transitions consumed.
    pub total_steps: usize,
}

impl TrainStats {
    /// Mean reward over the last `k` updates (converged performance probe).
    pub fn tail_mean(&self, k: usize) -> f32 {
        if self.mean_rewards.is_empty() {
            return 0.0;
        }
        let tail = &self.mean_rewards[self.mean_rewards.len().saturating_sub(k)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// The A2C agent: actor + critic + optimizer state.
#[derive(Debug)]
pub struct A2c {
    actor: Mlp,
    critic: Mlp,
    actor_opt: RmsProp,
    critic_opt: RmsProp,
    config: A2cConfig,
    rng: StdRng,
}

/// Computes actor and critic gradients for one rollout batch — shared by
/// A2C (RMSprop step) and ACKTR (K-FAC step).
pub(crate) fn actor_critic_gradients(
    actor: &Mlp,
    critic: &Mlp,
    rollout: &Rollout,
    ent_coef: f32,
    vf_coef: f32,
) -> (
    Gradients,
    Gradients,
    dosco_nn::mlp::ForwardCache,
    dosco_nn::mlp::ForwardCache,
) {
    let batch = rollout.actions.len() as f32;
    // Actor: policy gradient with entropy bonus on the logits.
    let actor_cache = actor.forward_cached(&rollout.obs);
    let dist = Categorical::new(&actor_cache.output);
    let dlogits = dist.policy_gradient_logits(&rollout.actions, &rollout.advantages, ent_coef);
    let actor_grads = actor.backward(&actor_cache, &dlogits);
    // Critic: 0.5·vf_coef·(v − ret)² per sample.
    let critic_cache = critic.forward_cached(&rollout.obs);
    let mut dv = Matrix::zeros(rollout.actions.len(), 1);
    for i in 0..rollout.actions.len() {
        dv.set(i, 0, vf_coef * (critic_cache.output.get(i, 0) - rollout.returns[i]) / batch);
    }
    let critic_grads = critic.backward(&critic_cache, &dv);
    (actor_grads, critic_grads, actor_cache, critic_cache)
}

impl A2c {
    /// Creates an A2C agent for `obs_dim`-dimensional observations and
    /// `num_actions` discrete actions, with all randomness derived from
    /// `seed`.
    pub fn new(obs_dim: usize, num_actions: usize, config: A2cConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], num_actions],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let critic = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], 1],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        A2c {
            actor,
            critic,
            actor_opt: RmsProp::with_lr(config.lr),
            critic_opt: RmsProp::with_lr(config.lr),
            config,
            rng,
        }
    }

    /// The actor network (the deployable policy).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The critic network.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// The configuration.
    pub fn config(&self) -> &A2cConfig {
        &self.config
    }

    /// Overwrites the current learning rate (external schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.actor_opt.set_learning_rate(lr);
        self.critic_opt.set_learning_rate(lr);
    }

    /// Greedy (argmax) action for a single observation — the inference
    /// mode of the deployed distributed agents.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` does not match the observation dimension.
    pub fn act_greedy(&self, obs: &[f32]) -> usize {
        let logits = self.actor.forward(&Matrix::row_vector(obs));
        Categorical::new(&logits).argmax()[0]
    }

    /// Trains for (at least) `total_steps` environment transitions across
    /// the parallel `envs` (Alg. 1 ln. 3–12). Returns per-update stats.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or env dimensions mismatch the networks.
    pub fn train(&mut self, envs: &mut [Box<dyn Env>], total_steps: usize) -> TrainStats {
        let mut collector = RolloutCollector::new(envs);
        let mut stats = TrainStats::default();
        let per_update = self.config.n_steps * envs.len();
        while stats.total_steps < total_steps {
            if self.config.lr_decay {
                let frac = stats.total_steps as f32 / total_steps as f32;
                let lr = self.config.lr * (1.0 - 0.9 * frac);
                self.actor_opt.set_learning_rate(lr);
                self.critic_opt.set_learning_rate(lr);
            }
            let mut rollout = collector.collect(
                envs,
                &self.actor,
                &self.critic,
                self.config.n_steps,
                self.config.gamma,
                self.config.gae_lambda,
                &mut self.rng,
            );
            self.apply_batch(&mut rollout);
            stats.mean_rewards.push(rollout.mean_reward());
            stats.total_steps += per_update;
        }
        stats
    }

    /// One update from an externally collected rollout — the learner-side
    /// entry point of the actor–learner runtime, and the exact update the
    /// serial [`A2c::train`] loop applies per batch. The RNG parameter is
    /// unused (the A2C update draws no randomness) but part of the shared
    /// learner signature.
    pub fn update_batch(&mut self, rollout: &mut Rollout, _rng: &mut StdRng) {
        self.apply_batch(rollout);
    }

    fn apply_batch(&mut self, rollout: &mut Rollout) {
        if self.config.normalize_advantages {
            rollout.normalize_advantages();
        }
        self.update(rollout);
    }

    /// Moves the sampling RNG out of the agent so an external collection
    /// loop (the runtime's actor thread) can continue the same stream;
    /// pair with [`A2c::restore_rng`]. The agent is left with a
    /// placeholder stream and must not sample until restored.
    pub fn take_rng(&mut self) -> StdRng {
        std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0))
    }

    /// Restores the sampling RNG after [`A2c::take_rng`].
    pub fn restore_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }

    fn update(&mut self, rollout: &Rollout) {
        let (mut actor_grads, mut critic_grads, _, _) = actor_critic_gradients(
            &self.actor,
            &self.critic,
            rollout,
            self.config.ent_coef,
            self.config.vf_coef,
        );
        actor_grads.clip_global_norm(self.config.max_grad_norm);
        critic_grads.clip_global_norm(self.config.max_grad_norm);
        self.actor_opt.step(&mut self.actor, &actor_grads);
        self.critic_opt.step(&mut self.critic, &critic_grads);
    }

    /// Replaces the actor (e.g. loading a saved policy).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn set_actor(&mut self, actor: Mlp) {
        assert_eq!(actor.inputs(), self.actor.inputs(), "obs dim mismatch");
        assert_eq!(actor.outputs(), self.actor.outputs(), "action dim mismatch");
        self.actor = actor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenvs::Corridor;

    #[test]
    fn learns_corridor() {
        let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Corridor::new(6)) as _).collect();
        let cfg = A2cConfig {
            lr: 0.02,
            n_steps: 8,
            hidden: [32, 32],
            ..A2cConfig::default()
        };
        // Seed 1 converges under the workspace StdRng stream (most seeds
        // do; a rare unlucky init can lock into the all-left optimum).
        let mut agent = A2c::new(1, 2, cfg, 1);
        let stats = agent.train(&mut envs, 20_000);
        // Converged policy: always go right, from anywhere in the corridor.
        for pos in [0.0f32, 0.25, 0.5, 0.75] {
            assert_eq!(agent.act_greedy(&[pos]), 1, "at pos {pos}");
        }
        // Reward improved over training.
        let early = stats.mean_rewards[..10].iter().sum::<f32>() / 10.0;
        let late = stats.tail_mean(10);
        assert!(late > early, "reward did not improve: {early} -> {late}");
    }

    #[test]
    fn deterministic_under_seed() {
        let train = |seed| {
            let mut envs: Vec<Box<dyn Env>> =
                vec![Box::new(Corridor::new(5)), Box::new(Corridor::new(5))];
            let cfg = A2cConfig {
                hidden: [8, 8],
                ..A2cConfig::default()
            };
            let mut agent = A2c::new(1, 2, cfg, seed);
            agent.train(&mut envs, 500).mean_rewards
        };
        assert_eq!(train(1), train(1));
        assert_ne!(train(1), train(2));
    }

    #[test]
    fn tail_mean_handles_short_histories() {
        let stats = TrainStats {
            mean_rewards: vec![1.0, 3.0],
            total_steps: 2,
        };
        assert_eq!(stats.tail_mean(10), 2.0);
        assert_eq!(TrainStats::default().tail_mean(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "obs dim mismatch")]
    fn set_actor_checks_shape() {
        let mut agent = A2c::new(
            3,
            2,
            A2cConfig {
                hidden: [4, 4],
                ..A2cConfig::default()
            },
            0,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let wrong = Mlp::new(&[5, 4, 2], dosco_nn::Activation::Tanh, &mut rng);
        agent.set_actor(wrong);
    }
}
