//! n-step rollout collection across parallel environments, with
//! bootstrapped discounted returns and generalized advantage estimation.

use crate::env::Env;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::{par, Categorical};
use rand::rngs::StdRng;

/// One collected mini-batch (`n_steps × n_envs` transitions, flattened
/// time-major: index `t * n_envs + e`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rollout {
    /// Observations (`B × obs_dim`).
    pub obs: Matrix,
    /// Sampled actions.
    pub actions: Vec<usize>,
    /// Immediate rewards.
    pub rewards: Vec<f32>,
    /// Episode-termination flags.
    pub dones: Vec<bool>,
    /// Critic value estimates at collection time.
    pub values: Vec<f32>,
    /// Bootstrapped discounted returns (targets for the critic).
    pub returns: Vec<f32>,
    /// Advantages (targets for the actor).
    pub advantages: Vec<f32>,
    /// Parallel env count (for reshaping).
    pub n_envs: usize,
    /// Steps per env.
    pub n_steps: usize,
    /// Sum of rewards in this batch (monitoring).
    pub reward_sum: f32,
}

/// Maintains the current observation of each parallel env between batches.
#[derive(Debug)]
pub struct RolloutCollector {
    current_obs: Vec<Vec<f32>>,
}

impl RolloutCollector {
    /// Resets all `envs` and records their initial observations.
    pub fn new(envs: &mut [Box<dyn Env>]) -> Self {
        let current_obs = envs.iter_mut().map(|e| e.reset()).collect();
        RolloutCollector { current_obs }
    }

    /// Collects `n_steps` transitions from every env under the current
    /// `actor` policy, evaluating states with `critic`, and computes
    /// returns/advantages with discount `gamma` and GAE parameter
    /// `gae_lambda` (1.0 = plain n-step returns).
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or observation sizes mismatch the actor.
    #[allow(clippy::too_many_arguments)] // established trainer-facing API
    pub fn collect(
        &mut self,
        envs: &mut [Box<dyn Env>],
        actor: &Mlp,
        critic: &Mlp,
        n_steps: usize,
        gamma: f32,
        gae_lambda: f32,
        rng: &mut StdRng,
    ) -> Rollout {
        assert!(!envs.is_empty(), "need at least one environment");
        let _span = dosco_obs::span(dosco_obs::SpanKind::RolloutCollect);
        let n_envs = envs.len();
        let obs_dim = actor.inputs();
        let batch = n_steps * n_envs;
        let mut obs = Matrix::zeros(batch, obs_dim);
        let mut actions = Vec::with_capacity(batch);
        let mut rewards = Vec::with_capacity(batch);
        let mut dones = Vec::with_capacity(batch);
        let mut values = Vec::with_capacity(batch);
        let mut reward_sum = 0.0;

        for t in 0..n_steps {
            // Batch the parallel envs' observations for one forward pass.
            let mut step_obs = Matrix::zeros(n_envs, obs_dim);
            for (e, o) in self.current_obs.iter().enumerate() {
                assert_eq!(o.len(), obs_dim, "observation length mismatch");
                step_obs.row_mut(e).copy_from_slice(o);
            }
            let dist = Categorical::new(&actor.forward(&step_obs));
            let acts = dist.sample(rng);
            let vals = critic.forward(&step_obs);
            // Sampling consumed the shared RNG serially above; the env
            // steps are independent (each env owns its RNG stream), so
            // they advance in parallel and the results are merged back in
            // env order — bit-identical to the serial loop.
            let results = par::par_map_mut(envs, |e, env| env.step(acts[e]));
            for (e, r) in results.into_iter().enumerate() {
                let idx = t * n_envs + e;
                obs.row_mut(idx).copy_from_slice(self.current_obs[e].as_slice());
                actions.push(acts[e]);
                rewards.push(r.reward);
                reward_sum += r.reward;
                dones.push(r.done);
                values.push(vals.get(e, 0));
                self.current_obs[e] = r.obs;
            }
        }

        // Bootstrap values for the observations after the last step.
        let mut last_obs = Matrix::zeros(n_envs, obs_dim);
        for (e, o) in self.current_obs.iter().enumerate() {
            last_obs.row_mut(e).copy_from_slice(o);
        }
        let last_vals = critic.forward(&last_obs);

        // GAE / bootstrapped returns, per env, backwards in time.
        let mut advantages = vec![0.0f32; batch];
        let mut returns = vec![0.0f32; batch];
        for e in 0..n_envs {
            let mut gae = 0.0f32;
            let mut next_value = last_vals.get(e, 0);
            for t in (0..n_steps).rev() {
                let idx = t * n_envs + e;
                let non_terminal = if dones[idx] { 0.0 } else { 1.0 };
                let delta = rewards[idx] + gamma * next_value * non_terminal - values[idx];
                gae = delta + gamma * gae_lambda * non_terminal * gae;
                advantages[idx] = gae;
                returns[idx] = gae + values[idx];
                next_value = values[idx];
            }
        }

        Rollout {
            obs,
            actions,
            rewards,
            dones,
            values,
            returns,
            advantages,
            n_envs,
            n_steps,
            reward_sum,
        }
    }
}

impl Rollout {
    /// Mean reward per transition in the batch.
    pub fn mean_reward(&self) -> f32 {
        self.reward_sum / (self.n_envs * self.n_steps) as f32
    }

    /// Appends another rollout's transitions (the learner-side minibatch
    /// aggregation of the actor–learner runtime). Returns and advantages
    /// must already be computed per rollout — GAE never crosses batch
    /// boundaries. After appending, indices are per-segment time-major
    /// (each source rollout's layout, concatenated), and `n_envs` counts
    /// the combined env shards.
    ///
    /// # Panics
    ///
    /// Panics if observation widths or `n_steps` differ.
    pub fn append(&mut self, other: &Rollout) {
        assert_eq!(
            self.obs.cols(),
            other.obs.cols(),
            "observation width mismatch"
        );
        assert_eq!(self.n_steps, other.n_steps, "n_steps mismatch");
        let mut obs = Matrix::zeros(self.obs.rows() + other.obs.rows(), self.obs.cols());
        let split = self.obs.rows() * self.obs.cols();
        obs.as_mut_slice()[..split].copy_from_slice(self.obs.as_slice());
        obs.as_mut_slice()[split..].copy_from_slice(other.obs.as_slice());
        self.obs = obs;
        self.actions.extend_from_slice(&other.actions);
        self.rewards.extend_from_slice(&other.rewards);
        self.dones.extend_from_slice(&other.dones);
        self.values.extend_from_slice(&other.values);
        self.returns.extend_from_slice(&other.returns);
        self.advantages.extend_from_slice(&other.advantages);
        self.n_envs += other.n_envs;
        self.reward_sum += other.reward_sum;
    }

    /// Normalizes advantages to zero mean / unit variance (a common
    /// variance-reduction step; optional in the algorithms).
    pub fn normalize_advantages(&mut self) {
        let n = self.advantages.len() as f32;
        let mean: f32 = self.advantages.iter().sum::<f32>() / n;
        let var: f32 = self
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / n;
        let std = var.sqrt().max(1e-6);
        for a in &mut self.advantages {
            *a = (*a - mean) / std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenvs::Corridor;
    use crate::env::Env;
    use dosco_nn::mlp::Activation;
    use rand::SeedableRng;

    fn actor_critic(obs: usize, acts: usize) -> (Mlp, Mlp) {
        let mut rng = StdRng::seed_from_u64(5);
        (
            Mlp::new(&[obs, 8, acts], Activation::Tanh, &mut rng),
            Mlp::new(&[obs, 8, 1], Activation::Tanh, &mut rng),
        )
    }

    #[test]
    fn collects_expected_batch_shape() {
        let mut envs: Vec<Box<dyn Env>> =
            vec![Box::new(Corridor::new(5)), Box::new(Corridor::new(5))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(1);
        let r = col.collect(&mut envs, &actor, &critic, 8, 0.99, 1.0, &mut rng);
        assert_eq!(r.obs.rows(), 16);
        assert_eq!(r.actions.len(), 16);
        assert_eq!(r.returns.len(), 16);
        assert_eq!((r.n_envs, r.n_steps), (2, 8));
    }

    /// With γ = 0, returns equal immediate rewards and advantages equal
    /// reward − value.
    #[test]
    fn gamma_zero_returns_are_rewards() {
        let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(4))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(2);
        let r = col.collect(&mut envs, &actor, &critic, 6, 0.0, 1.0, &mut rng);
        for i in 0..r.returns.len() {
            assert!((r.returns[i] - r.rewards[i]).abs() < 1e-6);
            assert!((r.advantages[i] - (r.rewards[i] - r.values[i])).abs() < 1e-6);
        }
    }

    /// Returns satisfy the Bellman recursion within an episode:
    /// ret_t = r_t + γ·ret_{t+1} (λ = 1, single env, no done in between).
    #[test]
    fn returns_follow_bellman_recursion() {
        let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(50))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(3);
        let gamma = 0.9;
        let r = col.collect(&mut envs, &actor, &critic, 10, gamma, 1.0, &mut rng);
        for t in 0..9 {
            if r.dones[t] {
                continue;
            }
            let lhs = r.returns[t];
            let rhs = r.rewards[t] + gamma * r.returns[t + 1];
            assert!((lhs - rhs).abs() < 1e-5, "t={t}: {lhs} vs {rhs}");
        }
    }

    /// Terminal transitions do not bootstrap across episode boundaries.
    #[test]
    fn done_cuts_bootstrap() {
        // Corridor of 2: action 1 terminates immediately with +1.
        let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(2))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(4);
        let r = col.collect(&mut envs, &actor, &critic, 20, 0.99, 1.0, &mut rng);
        for t in 0..20 {
            if r.dones[t] {
                // Return at a terminal step is exactly the reward.
                assert!((r.returns[t] - r.rewards[t]).abs() < 1e-5);
            }
        }
    }

    /// Collecting the same seeded setup twice — and at 1 vs 4 threads —
    /// yields bit-for-bit identical rollouts: the shared RNG is consumed
    /// serially for sampling, and env stepping only fans out over
    /// independent per-env state.
    #[test]
    fn collection_is_deterministic_across_thread_counts() {
        use dosco_nn::par;
        let run = || {
            let mut envs: Vec<Box<dyn Env>> = (0..6)
                .map(|i| Box::new(Corridor::new(3 + i)) as Box<dyn Env>)
                .collect();
            let (actor, critic) = actor_critic(1, 2);
            let mut col = RolloutCollector::new(&mut envs);
            let mut rng = StdRng::seed_from_u64(9);
            col.collect(&mut envs, &actor, &critic, 16, 0.99, 0.95, &mut rng)
        };
        let serial = par::with_threads(1, run);
        let serial_again = par::with_threads(1, run);
        let parallel = par::with_threads(4, run);
        assert_eq!(serial, serial_again, "same seed must reproduce exactly");
        assert_eq!(serial, parallel, "thread count must not change results");
    }

    /// Appending concatenates every per-transition field and keeps
    /// `mean_reward` consistent with the combined transition count.
    #[test]
    fn append_concatenates_rollouts() {
        let mut envs: Vec<Box<dyn Env>> =
            vec![Box::new(Corridor::new(4)), Box::new(Corridor::new(6))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = col.collect(&mut envs, &actor, &critic, 5, 0.99, 1.0, &mut rng);
        let b = col.collect(&mut envs, &actor, &critic, 5, 0.99, 1.0, &mut rng);
        let (a0, b0) = (a.clone(), b.clone());
        a.append(&b);
        assert_eq!(a.actions.len(), 20);
        assert_eq!(a.obs.rows(), 20);
        assert_eq!(a.n_envs, 4);
        assert_eq!(a.n_steps, 5);
        assert_eq!(&a.actions[..10], &a0.actions[..]);
        assert_eq!(&a.actions[10..], &b0.actions[..]);
        assert_eq!(a.obs.row(13), b0.obs.row(3));
        assert_eq!(&a.advantages[10..], &b0.advantages[..]);
        let combined = (a0.reward_sum + b0.reward_sum) / 20.0;
        assert!((a.mean_reward() - combined).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "n_steps mismatch")]
    fn append_rejects_mismatched_steps() {
        let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(4))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(12);
        let mut a = col.collect(&mut envs, &actor, &critic, 4, 0.99, 1.0, &mut rng);
        let b = col.collect(&mut envs, &actor, &critic, 6, 0.99, 1.0, &mut rng);
        a.append(&b);
    }

    #[test]
    fn normalize_advantages_zero_mean_unit_std() {
        let mut envs: Vec<Box<dyn Env>> = vec![Box::new(Corridor::new(6))];
        let (actor, critic) = actor_critic(1, 2);
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = StdRng::seed_from_u64(6);
        let mut r = col.collect(&mut envs, &actor, &critic, 32, 0.99, 0.95, &mut rng);
        r.normalize_advantages();
        let n = r.advantages.len() as f32;
        let mean: f32 = r.advantages.iter().sum::<f32>() / n;
        let var: f32 = r.advantages.iter().map(|a| a * a).sum::<f32>() / n;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}
