//! Gym-style environment traits (cf. Sec. IV-C3: the DRL agent interacts
//! with the network simulator through an OpenAI-Gym-like interface).

/// One transition result.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation after the step.
    pub obs: Vec<f32>,
    /// Reward earned by the step's action.
    pub reward: f32,
    /// Whether the episode terminated (the next `reset` starts fresh).
    pub done: bool,
}

/// A discrete-action environment.
///
/// Observations are fixed-length `f32` vectors (length
/// [`Env::obs_dim`]); actions are `0..num_actions`.
pub trait Env: Send {
    /// Observation vector length.
    fn obs_dim(&self) -> usize;

    /// Size of the discrete action space.
    fn num_actions(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Applies `action` and advances to the next decision point.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()` or if called
    /// after `done` without `reset`.
    fn step(&mut self, action: usize) -> StepResult;
}

/// A continuous-action environment (for DDPG). Actions are `f32` vectors
/// with components in `[-1, 1]`; environments rescale internally.
pub trait ContinuousEnv: Send {
    /// Observation vector length.
    fn obs_dim(&self) -> usize;

    /// Action vector length.
    fn action_dim(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Applies `action` (components in `[-1, 1]`).
    fn step(&mut self, action: &[f32]) -> StepResult;
}

#[cfg(test)]
pub(crate) mod testenvs {
    //! Tiny environments with known optimal policies, reused by the
    //! algorithm tests.

    use super::*;

    /// A 1-D corridor: positions 0..n-1, start at 0, goal at n-1.
    /// Action 0 = left (or stay), 1 = right. Reward −0.01 per step,
    /// +1 at the goal. Optimal: always right.
    #[derive(Debug)]
    pub struct Corridor {
        pub n: usize,
        pub pos: usize,
        pub steps: usize,
        pub max_steps: usize,
    }

    impl Corridor {
        pub fn new(n: usize) -> Self {
            Corridor {
                n,
                pos: 0,
                steps: 0,
                max_steps: 4 * n,
            }
        }

        fn obs(&self) -> Vec<f32> {
            vec![self.pos as f32 / (self.n - 1) as f32]
        }
    }

    impl Env for Corridor {
        fn obs_dim(&self) -> usize {
            1
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn reset(&mut self) -> Vec<f32> {
            self.pos = 0;
            self.steps = 0;
            self.obs()
        }

        fn step(&mut self, action: usize) -> StepResult {
            assert!(action < 2, "corridor has two actions");
            self.steps += 1;
            if action == 1 {
                self.pos = (self.pos + 1).min(self.n - 1);
            } else {
                self.pos = self.pos.saturating_sub(1);
            }
            let done = self.pos == self.n - 1 || self.steps >= self.max_steps;
            let reward = if self.pos == self.n - 1 { 1.0 } else { -0.01 };
            let obs = if done { self.reset() } else { self.obs() };
            StepResult { obs, reward, done }
        }
    }

    /// Continuous target-matching: reward −(a − target(obs))², episode of
    /// one step. Optimal action = target.
    #[derive(Debug)]
    pub struct TargetMatch {
        pub target: f32,
    }

    impl ContinuousEnv for TargetMatch {
        fn obs_dim(&self) -> usize {
            1
        }

        fn action_dim(&self) -> usize {
            1
        }

        fn reset(&mut self) -> Vec<f32> {
            vec![self.target]
        }

        fn step(&mut self, action: &[f32]) -> StepResult {
            let d = action[0] - self.target;
            StepResult {
                obs: vec![self.target],
                reward: -d * d,
                done: true,
            }
        }
    }
}
