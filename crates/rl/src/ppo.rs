//! Proximal policy optimization with a clipped surrogate objective
//! (Schulman et al. [41]).
//!
//! The paper cites PPO alongside TRPO as the family of gradual-update
//! policy-gradient methods that ACKTR belongs to; this implementation
//! serves as the ablation alternative to ACKTR's natural gradient.

use crate::a2c::TrainStats;
use crate::env::Env;
use crate::rollout::{Rollout, RolloutCollector};
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::optim::{Adam, Optimizer};
use dosco_nn::Categorical;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// PPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Clip range ε.
    pub clip: f32,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Steps collected per env per update.
    pub n_steps: usize,
    /// Optimization epochs per collected batch.
    pub epochs: usize,
    /// Hidden layer sizes.
    pub hidden: [usize; 2],
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            lr: 3e-3,
            clip: 0.2,
            ent_coef: 0.01,
            vf_coef: 0.5,
            max_grad_norm: 0.5,
            n_steps: 32,
            epochs: 4,
            hidden: [64, 64],
        }
    }
}

/// The PPO agent.
#[derive(Debug)]
pub struct Ppo {
    actor: Mlp,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    config: PpoConfig,
    rng: StdRng,
}

/// Gradient of the clipped surrogate + entropy loss w.r.t. the logits.
///
/// `L = −(1/B) Σ [ min(ρ·A, clip(ρ, 1±ε)·A) + β·H ]` with
/// `ρ = π(a)/π_old(a)`. The gradient of the min term is
/// `ρ·A · ∇log π(a)` when the unclipped branch is active, else zero.
pub(crate) fn ppo_logit_gradients(
    dist: &Categorical,
    actions: &[usize],
    advantages: &[f32],
    old_log_probs: &[f32],
    clip: f32,
    ent_coef: f32,
) -> Matrix {
    let b = actions.len() as f32;
    let lp = dist.log_prob(actions);
    let entropies = dist.entropy();
    let probs = dist.probs();
    let k = dist.num_actions();
    let mut out = Matrix::zeros(actions.len(), k);
    for r in 0..actions.len() {
        let ratio = (lp[r] - old_log_probs[r]).exp();
        let adv = advantages[r];
        // Unclipped branch active iff ρ·A ≤ clip(ρ)·A.
        let clipped_ratio = ratio.clamp(1.0 - clip, 1.0 + clip);
        let active = ratio * adv <= clipped_ratio * adv + 1e-12;
        let h = entropies[r];
        let row = out.row_mut(r);
        for (j, slot) in row.iter_mut().enumerate().take(k) {
            let p = probs.get(r, j);
            let onehot = if j == actions[r] { 1.0 } else { 0.0 };
            // ∇logits of −ρ·A·log-prob term: ρ·A·(π − onehot).
            let pg = if active { ratio * adv * (p - onehot) } else { 0.0 };
            // Entropy ascent (loss includes −β·H): β·π(logπ + H).
            let lpj = if p > 0.0 { p.ln() } else { 0.0 };
            let ent = ent_coef * p * (lpj + h);
            *slot = (pg + ent) / b;
        }
    }
    out
}

impl Ppo {
    /// Creates a PPO agent with all randomness derived from `seed`.
    pub fn new(obs_dim: usize, num_actions: usize, config: PpoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], num_actions],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let critic = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], 1],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        Ppo {
            actor,
            critic,
            actor_opt: Adam::with_lr(config.lr),
            critic_opt: Adam::with_lr(config.lr),
            config,
            rng,
        }
    }

    /// The actor network.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The critic network.
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// The configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Overwrites the current learning rate (external schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.actor_opt.set_learning_rate(lr);
        self.critic_opt.set_learning_rate(lr);
    }

    /// Greedy action for one observation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn act_greedy(&self, obs: &[f32]) -> usize {
        Categorical::new(&self.actor.forward(&Matrix::row_vector(obs))).argmax()[0]
    }

    /// Trains for (at least) `total_steps` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or dimensions mismatch.
    pub fn train(&mut self, envs: &mut [Box<dyn Env>], total_steps: usize) -> TrainStats {
        let mut collector = RolloutCollector::new(envs);
        let mut stats = TrainStats::default();
        let per_update = self.config.n_steps * envs.len();
        while stats.total_steps < total_steps {
            let mut rollout = collector.collect(
                envs,
                &self.actor,
                &self.critic,
                self.config.n_steps,
                self.config.gamma,
                self.config.gae_lambda,
                &mut self.rng,
            );
            self.apply_batch(&mut rollout);
            stats.mean_rewards.push(rollout.mean_reward());
            stats.total_steps += per_update;
        }
        stats
    }

    /// One clipped-surrogate update (all epochs) from an externally
    /// collected rollout — the learner-side entry point of the actor–
    /// learner runtime, identical to the per-batch update of the serial
    /// [`Ppo::train`] loop. The RNG parameter is unused (the PPO update
    /// draws no randomness) but part of the shared learner signature.
    pub fn update_batch(&mut self, rollout: &mut Rollout, _rng: &mut StdRng) {
        self.apply_batch(rollout);
    }

    fn apply_batch(&mut self, rollout: &mut Rollout) {
        rollout.normalize_advantages();
        // Old log-probs under the collection policy.
        let old_lp = Categorical::new(&self.actor.forward(&rollout.obs)).log_prob(&rollout.actions);
        let batch = rollout.actions.len() as f32;
        for _ in 0..self.config.epochs {
            let actor_cache = self.actor.forward_cached(&rollout.obs);
            let dist = Categorical::new(&actor_cache.output);
            let dlogits = ppo_logit_gradients(
                &dist,
                &rollout.actions,
                &rollout.advantages,
                &old_lp,
                self.config.clip,
                self.config.ent_coef,
            );
            let mut actor_grads = self.actor.backward(&actor_cache, &dlogits);
            actor_grads.clip_global_norm(self.config.max_grad_norm);
            self.actor_opt.step(&mut self.actor, &actor_grads);

            let critic_cache = self.critic.forward_cached(&rollout.obs);
            let mut dv = Matrix::zeros(rollout.actions.len(), 1);
            for i in 0..rollout.actions.len() {
                dv.set(
                    i,
                    0,
                    self.config.vf_coef * (critic_cache.output.get(i, 0) - rollout.returns[i])
                        / batch,
                );
            }
            let mut critic_grads = self.critic.backward(&critic_cache, &dv);
            critic_grads.clip_global_norm(self.config.max_grad_norm);
            self.critic_opt.step(&mut self.critic, &critic_grads);
        }
    }

    /// Moves the sampling RNG out of the agent so an external collection
    /// loop (the runtime's actor thread) can continue the same stream;
    /// pair with [`Ppo::restore_rng`].
    pub fn take_rng(&mut self) -> StdRng {
        std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0))
    }

    /// Restores the sampling RNG after [`Ppo::take_rng`].
    pub fn restore_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenvs::Corridor;

    #[test]
    fn learns_corridor() {
        let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Corridor::new(6)) as _).collect();
        let cfg = PpoConfig {
            hidden: [32, 32],
            ..PpoConfig::default()
        };
        let mut agent = Ppo::new(1, 2, cfg, 3);
        agent.train(&mut envs, 20_000);
        for pos in [0.0f32, 0.25, 0.5, 0.75] {
            assert_eq!(agent.act_greedy(&[pos]), 1, "at pos {pos}");
        }
    }

    /// The PPO logit gradient reduces to the vanilla policy gradient when
    /// old == new policy (ρ = 1, unclipped).
    #[test]
    fn gradient_matches_pg_at_ratio_one() {
        let logits = Matrix::from_rows(&[&[0.3, -0.2, 0.8]]);
        let dist = Categorical::new(&logits);
        let actions = [1usize];
        let advs = [0.7f32];
        let old_lp = dist.log_prob(&actions);
        let ppo_grad = ppo_logit_gradients(&dist, &actions, &advs, &old_lp, 0.2, 0.01);
        let pg_grad = dist.policy_gradient_logits(&actions, &advs, 0.01);
        for j in 0..3 {
            assert!(
                (ppo_grad.get(0, j) - pg_grad.get(0, j)).abs() < 1e-6,
                "logit {j}"
            );
        }
    }

    /// Once the ratio exceeds 1+ε with positive advantage, the policy
    /// gradient contribution vanishes (only entropy remains).
    #[test]
    fn gradient_clips_large_ratios() {
        let logits = Matrix::from_rows(&[&[2.0, 0.0]]);
        let dist = Categorical::new(&logits);
        let actions = [0usize];
        let advs = [1.0f32];
        // Pretend the old policy gave this action much lower probability.
        let old_lp = [dist.log_prob(&actions)[0] - 1.0]; // ratio = e ≈ 2.72
        let grad = ppo_logit_gradients(&dist, &actions, &advs, &old_lp, 0.2, 0.0);
        assert_eq!(grad.get(0, 0), 0.0);
        assert_eq!(grad.get(0, 1), 0.0);
    }
}
