//! Deep deterministic policy gradient (Lillicrap et al.) for continuous
//! action spaces.
//!
//! Used by the centralized DRL baseline (Sec. V-A3, ref [10]): its rule
//! updates are continuous scheduling/placement weights, learned here with
//! a deterministic actor, a Q critic over `(s, a)`, target networks with
//! Polyak averaging, a uniform replay buffer, and Ornstein-Uhlenbeck
//! exploration noise.

use crate::env::ContinuousEnv;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::optim::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// DDPG hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// Actor Adam learning rate.
    pub actor_lr: f32,
    /// Critic Adam learning rate.
    pub critic_lr: f32,
    /// Polyak averaging rate τ for the target networks.
    pub tau: f32,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Random-action steps before learning starts.
    pub warmup: usize,
    /// OU noise mean-reversion rate θ.
    pub ou_theta: f32,
    /// OU noise volatility σ.
    pub ou_sigma: f32,
    /// Hidden layer sizes.
    pub hidden: [usize; 2],
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            gamma: 0.99,
            actor_lr: 1e-3,
            critic_lr: 1e-2,
            tau: 0.01,
            buffer_capacity: 50_000,
            batch_size: 64,
            warmup: 256,
            ou_theta: 0.15,
            ou_sigma: 0.2,
            hidden: [64, 64],
        }
    }
}

/// One replay transition.
#[derive(Debug, Clone, PartialEq)]
struct Transition {
    obs: Vec<f32>,
    action: Vec<f32>,
    reward: f32,
    next_obs: Vec<f32>,
    done: bool,
}

/// Fixed-capacity uniform replay buffer (ring).
#[derive(Debug)]
pub struct ReplayBuffer {
    data: Vec<Transition>,
    capacity: usize,
    head: usize,
}

impl ReplayBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        ReplayBuffer {
            data: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            head: 0,
        }
    }

    /// Current number of stored transitions (bounded by capacity).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn sample_indices(&self, n: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..n).map(|_| rng.gen_range(0..self.data.len())).collect()
    }
}

/// The DDPG agent.
#[derive(Debug)]
pub struct Ddpg {
    actor: Mlp,
    critic: Mlp,
    target_actor: Mlp,
    target_critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: ReplayBuffer,
    config: DdpgConfig,
    obs_dim: usize,
    action_dim: usize,
    noise: Vec<f32>,
    rng: StdRng,
    steps: usize,
}

impl Ddpg {
    /// Creates a DDPG agent with all randomness derived from `seed`.
    pub fn new(obs_dim: usize, action_dim: usize, config: DdpgConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &[obs_dim, config.hidden[0], config.hidden[1], action_dim],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let critic = Mlp::new(
            &[
                obs_dim + action_dim,
                config.hidden[0],
                config.hidden[1],
                1,
            ],
            dosco_nn::Activation::Tanh,
            &mut rng,
        );
        let target_actor = actor.clone();
        let target_critic = critic.clone();
        Ddpg {
            actor,
            critic,
            target_actor,
            target_critic,
            actor_opt: Adam::with_lr(config.actor_lr),
            critic_opt: Adam::with_lr(config.critic_lr),
            buffer: ReplayBuffer::new(config.buffer_capacity),
            config,
            obs_dim,
            action_dim,
            noise: vec![0.0; action_dim],
            rng,
            steps: 0,
        }
    }

    /// The deterministic actor.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The replay buffer (diagnostics).
    pub fn buffer(&self) -> &ReplayBuffer {
        &self.buffer
    }

    fn randn(rng: &mut StdRng) -> f32 {
        let u1: f32 = rng.gen_range(1e-6..1.0f32);
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Deterministic policy output `tanh(μ(s)) ∈ [-1, 1]ᵈ` (no noise).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn act(&self, obs: &[f32]) -> Vec<f32> {
        assert_eq!(obs.len(), self.obs_dim, "observation length mismatch");
        self.actor
            .forward(&Matrix::row_vector(obs))
            .row(0)
            .iter()
            .map(|v| v.tanh())
            .collect()
    }

    /// Policy output with OU exploration noise, clamped to `[-1, 1]`.
    pub fn act_noisy(&mut self, obs: &[f32]) -> Vec<f32> {
        let mut a = self.act(obs);
        for (ai, ni) in a.iter_mut().zip(self.noise.iter_mut()) {
            *ni += self.config.ou_theta * (0.0 - *ni)
                + self.config.ou_sigma * Self::randn(&mut self.rng);
            *ai = (*ai + *ni).clamp(-1.0, 1.0);
        }
        a
    }

    /// Stores a transition and, past warmup, performs one gradient update.
    pub fn observe(
        &mut self,
        obs: Vec<f32>,
        action: Vec<f32>,
        reward: f32,
        next_obs: Vec<f32>,
        done: bool,
    ) {
        self.buffer.push(Transition {
            obs,
            action,
            reward,
            next_obs,
            done,
        });
        self.steps += 1;
        if self.buffer.len() >= self.config.warmup.max(self.config.batch_size) {
            self.update();
        }
    }

    fn update(&mut self) {
        let n = self.config.batch_size;
        let idx = self.buffer.sample_indices(n, &mut self.rng);
        let od = self.obs_dim;
        let ad = self.action_dim;
        let mut obs = Matrix::zeros(n, od);
        let mut next_obs = Matrix::zeros(n, od);
        let mut sa = Matrix::zeros(n, od + ad);
        let mut rewards = Vec::with_capacity(n);
        let mut dones = Vec::with_capacity(n);
        for (r, &i) in idx.iter().enumerate() {
            let t = &self.buffer.data[i];
            obs.row_mut(r).copy_from_slice(&t.obs);
            next_obs.row_mut(r).copy_from_slice(&t.next_obs);
            sa.row_mut(r)[..od].copy_from_slice(&t.obs);
            sa.row_mut(r)[od..].copy_from_slice(&t.action);
            rewards.push(t.reward);
            dones.push(t.done);
        }

        // Critic target: y = r + γ(1−d)·Q'(s', tanh(μ'(s'))).
        let next_a = self.target_actor.forward(&next_obs).map(f32::tanh);
        let mut next_sa = Matrix::zeros(n, od + ad);
        for r in 0..n {
            next_sa.row_mut(r)[..od].copy_from_slice(next_obs.row(r));
            next_sa.row_mut(r)[od..].copy_from_slice(next_a.row(r));
        }
        let next_q = self.target_critic.forward(&next_sa);
        let critic_cache = self.critic.forward_cached(&sa);
        let mut dq = Matrix::zeros(n, 1);
        for r in 0..n {
            let y = rewards[r]
                + self.config.gamma * if dones[r] { 0.0 } else { next_q.get(r, 0) };
            dq.set(r, 0, (critic_cache.output.get(r, 0) - y) / n as f32);
        }
        let critic_grads = self.critic.backward(&critic_cache, &dq);
        self.critic_opt.step(&mut self.critic, &critic_grads);

        // Actor: maximize Q(s, tanh(μ(s))) — chain the critic's action
        // gradient through tanh into the actor.
        let actor_cache = self.actor.forward_cached(&obs);
        let a = actor_cache.output.map(f32::tanh);
        let mut sa_pi = Matrix::zeros(n, od + ad);
        for r in 0..n {
            sa_pi.row_mut(r)[..od].copy_from_slice(obs.row(r));
            sa_pi.row_mut(r)[od..].copy_from_slice(a.row(r));
        }
        let q_cache = self.critic.forward_cached(&sa_pi);
        let dout = Matrix::from_fn(n, 1, |_, _| -1.0 / n as f32); // ascend Q
        let (_, dinput) = self.critic.backward_with_input_grad(&q_cache, &dout);
        // Take the action part and chain through tanh'(z) = 1 − tanh²(z).
        let mut da_pre = Matrix::zeros(n, ad);
        for r in 0..n {
            for c in 0..ad {
                let t = a.get(r, c);
                da_pre.set(r, c, dinput.get(r, od + c) * (1.0 - t * t));
            }
        }
        let actor_grads = self.actor.backward(&actor_cache, &da_pre);
        self.actor_opt.step(&mut self.actor, &actor_grads);

        // Target network Polyak updates.
        self.target_actor.soft_update_from(&self.actor, self.config.tau);
        self.target_critic
            .soft_update_from(&self.critic, self.config.tau);
    }

    /// Convenience training loop over a [`ContinuousEnv`]: act noisily,
    /// observe, repeat for `total_steps`. Returns the reward history.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with the environment.
    pub fn train(&mut self, env: &mut dyn ContinuousEnv, total_steps: usize) -> Vec<f32> {
        assert_eq!(env.obs_dim(), self.obs_dim, "obs dim mismatch");
        assert_eq!(env.action_dim(), self.action_dim, "action dim mismatch");
        let mut rewards = Vec::with_capacity(total_steps);
        let mut obs = env.reset();
        for _ in 0..total_steps {
            let action = if self.steps < self.config.warmup {
                (0..self.action_dim)
                    .map(|_| self.rng.gen_range(-1.0..1.0))
                    .collect()
            } else {
                self.act_noisy(&obs)
            };
            let r = env.step(&action);
            rewards.push(r.reward);
            let next = if r.done { env.reset() } else { r.obs.clone() };
            self.observe(obs, action, r.reward, r.obs, r.done);
            obs = next;
        }
        rewards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenvs::TargetMatch;

    #[test]
    fn replay_buffer_ring_semantics() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        for i in 0..5 {
            b.push(Transition {
                obs: vec![i as f32],
                action: vec![0.0],
                reward: 0.0,
                next_obs: vec![0.0],
                done: false,
            });
        }
        assert_eq!(b.len(), 3);
        // Oldest entries overwritten: remaining obs are {3, 4, 2}.
        let vals: Vec<f32> = b.data.iter().map(|t| t.obs[0]).collect();
        assert!(vals.contains(&4.0) && vals.contains(&3.0) && vals.contains(&2.0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn replay_rejects_zero_capacity() {
        ReplayBuffer::new(0);
    }

    #[test]
    fn learns_target_matching() {
        // Optimal action is 0.6; reward = −(a − 0.6)².
        let mut env = TargetMatch { target: 0.6 };
        let cfg = DdpgConfig {
            hidden: [16, 16],
            warmup: 64,
            batch_size: 32,
            buffer_capacity: 4_096,
            ..DdpgConfig::default()
        };
        let mut agent = Ddpg::new(1, 1, cfg, 9);
        agent.train(&mut env, 3_000);
        let a = agent.act(&[0.6])[0];
        assert!((a - 0.6).abs() < 0.15, "learned action {a}");
    }

    #[test]
    fn actions_bounded() {
        let mut agent = Ddpg::new(
            2,
            3,
            DdpgConfig {
                hidden: [8, 8],
                ..DdpgConfig::default()
            },
            1,
        );
        for _ in 0..50 {
            let a = agent.act_noisy(&[0.5, -0.5]);
            assert_eq!(a.len(), 3);
            assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "{a:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut env = TargetMatch { target: -0.2 };
            let mut agent = Ddpg::new(
                1,
                1,
                DdpgConfig {
                    hidden: [8, 8],
                    warmup: 16,
                    batch_size: 8,
                    ..DdpgConfig::default()
                },
                seed,
            );
            agent.train(&mut env, 200)
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
