//! Learning-rate schedules.
//!
//! The algorithms accept an external schedule via their `set_lr` methods;
//! this module provides the standard shapes (stable-baselines ships the
//! same set for ACKTR/A2C).

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over training progress `frac ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant rate.
    Constant,
    /// Linear decay from the base rate to `final_fraction` of it.
    Linear {
        /// Fraction of the base rate remaining at the end of training.
        final_fraction: f32,
    },
    /// Half-cosine decay from the base rate to `final_fraction` of it.
    Cosine {
        /// Fraction of the base rate remaining at the end of training.
        final_fraction: f32,
    },
    /// Piecewise-constant steps: full rate, then multiplied by `factor`
    /// at every boundary in `at` (fractions of training progress).
    Step {
        /// Multiplier applied at each boundary.
        factor: f32,
        /// Boundary at which the first step happens, in `[0, 1]`.
        first_at: f32,
        /// Distance between subsequent boundaries.
        every: f32,
    },
}

impl LrSchedule {
    /// The learning rate at progress `frac ∈ [0, 1]`, for base rate `lr`.
    ///
    /// Out-of-range `frac` is clamped.
    pub fn at(&self, lr: f32, frac: f32) -> f32 {
        let frac = frac.clamp(0.0, 1.0);
        match *self {
            LrSchedule::Constant => lr,
            LrSchedule::Linear { final_fraction } => {
                lr * (1.0 - (1.0 - final_fraction) * frac)
            }
            LrSchedule::Cosine { final_fraction } => {
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * frac).cos());
                lr * (final_fraction + (1.0 - final_fraction) * cos)
            }
            LrSchedule::Step {
                factor,
                first_at,
                every,
            } => {
                if frac < first_at || every <= 0.0 {
                    if frac < first_at {
                        lr
                    } else {
                        lr * factor
                    }
                } else {
                    let steps = 1 + ((frac - first_at) / every) as u32;
                    lr * factor.powi(steps as i32)
                }
            }
        }
    }
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule::Linear {
            final_fraction: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.at(0.25, 0.0), 0.25);
        assert_eq!(s.at(0.25, 1.0), 0.25);
    }

    #[test]
    fn linear_endpoints() {
        let s = LrSchedule::Linear { final_fraction: 0.1 };
        assert_eq!(s.at(1.0, 0.0), 1.0);
        assert!((s.at(1.0, 1.0) - 0.1).abs() < 1e-6);
        assert!((s.at(1.0, 0.5) - 0.55).abs() < 1e-6);
    }

    #[test]
    fn cosine_monotone_and_bounded() {
        let s = LrSchedule::Cosine { final_fraction: 0.0 };
        let mut prev = s.at(1.0, 0.0);
        assert!((prev - 1.0).abs() < 1e-6);
        for i in 1..=10 {
            let cur = s.at(1.0, i as f32 / 10.0);
            assert!(cur <= prev + 1e-6, "not monotone at {i}");
            prev = cur;
        }
        assert!(prev.abs() < 1e-6);
    }

    #[test]
    fn step_applies_factor_at_boundaries() {
        let s = LrSchedule::Step {
            factor: 0.5,
            first_at: 0.5,
            every: 0.25,
        };
        assert_eq!(s.at(1.0, 0.4), 1.0);
        assert_eq!(s.at(1.0, 0.5), 0.5);
        assert_eq!(s.at(1.0, 0.76), 0.25);
    }

    #[test]
    fn clamps_out_of_range_progress() {
        let s = LrSchedule::default();
        assert_eq!(s.at(1.0, -1.0), s.at(1.0, 0.0));
        assert_eq!(s.at(1.0, 2.0), s.at(1.0, 1.0));
    }
}
