//! Cross-algorithm integration tests on small environments with known
//! optimal policies.

use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::acktr::{Acktr, AcktrConfig};
use dosco_rl::env::{Env, StepResult};
use dosco_rl::ppo::{Ppo, PpoConfig};

/// Contextual bandit: the observation names the rewarded action.
/// Optimal policy: copy the observation.
#[derive(Debug)]
struct Mimic {
    k: usize,
    target: usize,
    t: usize,
}

impl Mimic {
    fn new(k: usize) -> Self {
        Mimic { k, target: 0, t: 0 }
    }

    fn obs(&self) -> Vec<f32> {
        let mut o = vec![0.0; self.k];
        o[self.target] = 1.0;
        o
    }
}

impl Env for Mimic {
    fn obs_dim(&self) -> usize {
        self.k
    }

    fn num_actions(&self) -> usize {
        self.k
    }

    fn reset(&mut self) -> Vec<f32> {
        self.t = 0;
        self.target = 0;
        self.obs()
    }

    fn step(&mut self, action: usize) -> StepResult {
        let reward = if action == self.target { 1.0 } else { -0.2 };
        self.t += 1;
        // Deterministic cycling context.
        self.target = (self.target + 7) % self.k;
        StepResult {
            obs: self.obs(),
            reward,
            done: self.t.is_multiple_of(32),
        }
    }
}

/// Asserts at least `min_pct` percent of contexts map to their optimal
/// action (chance level is 100/k ≈ 20 %).
fn assert_learned_mimic(act: impl Fn(&[f32]) -> usize, k: usize, min_pct: usize, label: &str) {
    let mut correct = 0;
    for target in 0..k {
        let mut obs = vec![0.0; k];
        obs[target] = 1.0;
        if act(&obs) == target {
            correct += 1;
        }
    }
    assert!(
        correct * 100 >= k * min_pct,
        "{label}: only {correct}/{k} contexts learned (need {min_pct}%)"
    );
}

#[test]
fn a2c_learns_contextual_bandit() {
    let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Mimic::new(5)) as _).collect();
    let mut agent = A2c::new(
        5,
        5,
        A2cConfig {
            lr: 0.02,
            hidden: [24, 24],
            gamma: 0.0,
            ..A2cConfig::default()
        },
        1,
    );
    agent.train(&mut envs, 12_000);
    // A2C is the weakest of the three here (plain gradient); require a
    // clear majority rather than near-perfection.
    assert_learned_mimic(|o| agent.act_greedy(o), 5, 60, "a2c");
}

#[test]
fn acktr_learns_contextual_bandit() {
    let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Mimic::new(5)) as _).collect();
    let mut agent = Acktr::new(
        5,
        5,
        AcktrConfig {
            hidden: [24, 24],
            gamma: 0.0,
            ..AcktrConfig::default()
        },
        1,
    );
    agent.train(&mut envs, 12_000);
    assert_learned_mimic(|o| agent.act_greedy(o), 5, 80, "acktr");
}

#[test]
fn ppo_learns_contextual_bandit() {
    let mut envs: Vec<Box<dyn Env>> = (0..4).map(|_| Box::new(Mimic::new(5)) as _).collect();
    let mut agent = Ppo::new(
        5,
        5,
        PpoConfig {
            hidden: [24, 24],
            gamma: 0.0,
            ..PpoConfig::default()
        },
        1,
    );
    agent.train(&mut envs, 16_000);
    assert_learned_mimic(|o| agent.act_greedy(o), 5, 80, "ppo");
}

#[test]
fn training_reward_improves_for_all_algorithms() {
    // The mean batch reward must improve from the first to the last tenth
    // of training for every algorithm on the same task.
    let run = |name: &str, rewards: Vec<f32>| {
        let n = rewards.len();
        let first: f32 = rewards[..n / 10].iter().sum::<f32>() / (n / 10) as f32;
        let last: f32 = rewards[n - n / 10..].iter().sum::<f32>() / (n / 10) as f32;
        assert!(last > first, "{name}: {first} -> {last}");
    };
    let mut envs: Vec<Box<dyn Env>> = (0..2).map(|_| Box::new(Mimic::new(4)) as _).collect();
    let mut a2c = A2c::new(
        4,
        4,
        A2cConfig {
            lr: 0.02,
            hidden: [16, 16],
            gamma: 0.0,
            ..A2cConfig::default()
        },
        3,
    );
    run("a2c", a2c.train(&mut envs, 10_000).mean_rewards);

    let mut envs: Vec<Box<dyn Env>> = (0..2).map(|_| Box::new(Mimic::new(4)) as _).collect();
    let mut acktr = Acktr::new(
        4,
        4,
        AcktrConfig {
            hidden: [16, 16],
            gamma: 0.0,
            ..AcktrConfig::default()
        },
        3,
    );
    run("acktr", acktr.train(&mut envs, 10_000).mean_rewards);
}
