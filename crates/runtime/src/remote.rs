//! Multi-process actor–learner deployment over `dosco_net` sockets.
//!
//! One learner process runs [`run_learner_server`]: it binds, accepts one
//! TCP connection per actor, hands each a [`LearnerHello`] (mode, collect
//! params, initial snapshot, RNG state in sync mode), and then runs the
//! *same* [`crate::driver::run_learner_loop`] the in-process driver uses —
//! only the transport differs, so the arithmetic cannot drift. Actor
//! processes run [`run_actor`]: connect (with the `dosco_net` retry
//! policy), mirror an in-process actor thread, and stream
//! [`ExperienceBatch`] frames back.
//!
//! Per-connection wiring (one TCP stream, both directions):
//!
//! ```text
//!  learner process                       actor process
//!  ┌─────────────────────┐   hello,     ┌──────────────────┐
//!  │ run_learner_loop    │   ActorCtrl  │ collect loop     │
//!  │  ◀─ fan-in channel ─┼──────────────┼─▶ ctrl receiver  │
//!  │  forwarder / conn   │◀─────────────┼── batch sender   │
//!  └─────────────────────┘  Experience  └──────────────────┘
//! ```
//!
//! **Sync mode** is lockstep exactly as in-process: the single actor sends
//! its batch with the circulating RNG inside and blocks until the
//! learner's [`ActorCtrl::Reply`] carries the post-update snapshot and RNG
//! back. A 1-learner + 1-actor sync deployment over loopback is therefore
//! bit-identical to [`crate::train`] (pinned by test).
//!
//! **Async mode** replaces the in-process clock gate with a per-actor
//! *version window*: an actor blocks once it has sent more than
//! [`LearnerHello::skew`] batches past the last snapshot version it has
//! seen. Unlike the in-process SSP gate, socket queues and kernel buffers
//! hold additional in-flight batches, so deployments should budget
//! [`crate::RuntimeConfig::max_staleness`] with headroom above
//! `min_staleness_bound()` — the learner still asserts the bound on every
//! batch it consumes.

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, TryRecvError};
use dosco_net::{
    connect_with_retry, read_frame, receiver_on, sender_on, write_frame, BoxRx, BoxTx, NetConfig,
    NetError, Rx,
};
use dosco_rl::env::Env;
use dosco_rl::rollout::RolloutCollector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Mode, RuntimeConfig};
use crate::counters::Counters;
use crate::driver::{run_learner_loop, RuntimeOutcome};
use crate::learner::Learner;
use crate::snapshot::PolicySnapshot;
use crate::wire::{ActorCtrl, ExperienceBatch, LearnerHello};

fn io_protocol(what: &str, e: &dyn std::fmt::Display) -> NetError {
    NetError::Protocol(format!("{what}: {e}"))
}

/// One accepted actor connection, wired for duplex traffic.
struct ActorConn {
    ctrl: BoxTx<ActorCtrl>,
    batches: BoxRx<ExperienceBatch>,
}

fn accept_actor(
    listener: &TcpListener,
    hello: &LearnerHello,
    capacity: usize,
) -> Result<ActorConn, NetError> {
    let (stream, _) = listener
        .accept()
        .map_err(|e| io_protocol("accept actor connection", &e))?;
    let _ = stream.set_nodelay(true);
    let read_half = stream
        .try_clone()
        .map_err(|e| io_protocol("clone actor stream", &e))?;
    let mut hello_half = stream
        .try_clone()
        .map_err(|e| io_protocol("clone actor stream", &e))?;
    write_frame(&mut hello_half, &dosco_net::encode_msg(hello))
        .map_err(|e| io_protocol("send LearnerHello", &e))?;
    Ok(ActorConn {
        ctrl: sender_on::<ActorCtrl>(stream, capacity),
        batches: receiver_on::<ExperienceBatch>(read_half, capacity),
    })
}

/// The learner end of a multi-process deployment, bound but not yet
/// serving. Splitting bind from [`LearnerServer::run`] lets a caller bind
/// `127.0.0.1:0` and hand the resolved [`LearnerServer::local_addr`] to
/// the actor processes.
#[derive(Debug)]
pub struct LearnerServer {
    listener: TcpListener,
}

impl LearnerServer {
    /// Binds the learner's listening socket.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] naming the bind failure.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| io_protocol("bind learner listener", &e))?;
        Ok(LearnerServer { listener })
    }

    /// The bound address (`host:port`), with any ephemeral port resolved.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound socket.
    #[must_use]
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string()
    }

    /// Accepts `n_actors` connections ([`RuntimeConfig::n_actors`]; sync
    /// mode forces one), handshakes each, and trains for `total_steps`
    /// transitions exactly as [`crate::train`] would — same learner loop,
    /// same counters, same shutdown drain (in-flight batches are consumed
    /// until every actor disconnects, recovering a circulating RNG if one
    /// is queued).
    ///
    /// `cancel`, when provided, stops the learner at the next batch
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`NetError`] if accepting or the handshake fails.
    ///
    /// # Panics
    ///
    /// As [`crate::train`]: invalid configuration, a violated staleness
    /// bound, or (pathologically, e.g. an actor killed mid-lockstep) an
    /// unrecoverable agent RNG.
    pub fn run<L: Learner>(
        &self,
        learner: &mut L,
        total_steps: usize,
        config: &RuntimeConfig,
        cancel: Option<&AtomicBool>,
    ) -> Result<RuntimeOutcome, NetError> {
        run_on_listener(&self.listener, learner, total_steps, config, cancel)
    }
}

/// Binds `addr` and serves one training run: `LearnerServer::bind` +
/// [`LearnerServer::run`] in one call, for role entrypoints whose address
/// is fully specified up front.
///
/// # Errors
///
/// As [`LearnerServer::bind`] and [`LearnerServer::run`].
pub fn run_learner_server<L: Learner>(
    learner: &mut L,
    total_steps: usize,
    config: &RuntimeConfig,
    addr: &str,
    cancel: Option<&AtomicBool>,
) -> Result<RuntimeOutcome, NetError> {
    LearnerServer::bind(addr)?.run(learner, total_steps, config, cancel)
}

fn run_on_listener<L: Learner>(
    listener: &TcpListener,
    learner: &mut L,
    total_steps: usize,
    config: &RuntimeConfig,
    cancel: Option<&AtomicBool>,
) -> Result<RuntimeOutcome, NetError> {
    config.validate().expect("invalid runtime configuration");
    let sync = config.mode == Mode::Sync;
    let n_actors = if sync { 1 } else { config.n_actors.max(1) };
    let params = learner.collect_params();
    let skew = if sync { 0 } else { config.round_skew() };

    let snapshot0 = PolicySnapshot {
        version: 0,
        actor: learner.actor().clone(),
        critic: learner.critic().clone(),
    };
    let agent_rng = learner.take_rng();
    // Sync mode hands the whole RNG stream to the single actor via the
    // hello; async mode keeps it learner-side for every update.
    let (hello_rng, mut final_rng) = if sync {
        (Some(agent_rng.state()), None)
    } else {
        (None, Some(agent_rng))
    };

    let mut ctrl_txs: Vec<BoxTx<ActorCtrl>> = Vec::with_capacity(n_actors);
    let mut conn_rxs: Vec<BoxRx<ExperienceBatch>> = Vec::with_capacity(n_actors);
    for idx in 0..n_actors {
        let hello = LearnerHello {
            mode: config.mode,
            params,
            actor_index: idx as u64,
            actor_seed: config.actor_seed,
            skew,
            snapshot: snapshot0.clone(),
            rng: hello_rng,
        };
        let conn = accept_actor(listener, &hello, config.channel_capacity)?;
        ctrl_txs.push(conn.ctrl);
        conn_rxs.push(conn.batches);
    }

    // Fan the per-connection streams into the single bounded channel the
    // learner loop consumes (same capacity knob as the in-process driver).
    let (fan_tx, fan_rx) = channel::bounded::<ExperienceBatch>(config.channel_capacity);
    let forwarders: Vec<JoinHandle<()>> = conn_rxs
        .into_iter()
        .map(|rx| {
            let fan_tx = fan_tx.clone();
            std::thread::Builder::new()
                .name("dosco-learner-fanin".into())
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        if fan_tx.send(batch).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn dosco-learner-fanin")
        })
        .collect();
    drop(fan_tx); // disconnect now tracks the forwarders alone
    let fan_rx = dosco_net::rx_from_channel(fan_rx);

    let counters = Counters::default();
    let stats = run_learner_loop(
        learner,
        fan_rx.as_ref(),
        config,
        total_steps,
        &counters,
        &mut final_rng,
        cancel,
        |snap| {
            if !sync {
                // Sync mode carries the snapshot in the lockstep Reply.
                for tx in &ctrl_txs {
                    let _ = tx.send(ActorCtrl::Publish((*snap).clone()));
                }
            }
        },
        |snap, rng| {
            let state = rng.state();
            ctrl_txs[0]
                .send(ActorCtrl::Reply {
                    snapshot: (*snap).clone(),
                    rng: state,
                })
                .map_err(|_| StdRng::from_state(state))
        },
    );

    // Shutdown: dropping the ctrl senders FINs every actor's control
    // stream; actors exit, their batch streams close, and the drain below
    // runs until the last forwarder hangs up — recovering a queued
    // circulating RNG exactly like the in-process drain.
    drop(ctrl_txs);
    while let Ok(batch) = fan_rx.recv() {
        Counters::inc(&counters.batches_drained);
        if batch.rng.is_some() {
            final_rng = batch.rng;
        }
    }
    for h in forwarders {
        let _ = h.join();
    }

    learner.restore_rng(final_rng.expect("the runtime recovers the agent RNG at shutdown"));
    Ok(RuntimeOutcome {
        report: counters.report(config.mode.name(), n_actors, config.max_staleness),
        stats,
    })
}

/// Runs one actor process: dial the learner at `addr` (using `net`'s
/// retry/timeout policy), handshake, then collect rollouts over `envs` and
/// stream them back until the learner hangs up. Returns the number of
/// batches sent.
///
/// In sync mode this process mirrors the in-process lockstep actor
/// bit-for-bit: the circulating RNG rides inside every batch and comes
/// back with each [`ActorCtrl::Reply`]. In async mode the actor derives
/// the same per-actor RNG stream as an in-process actor thread
/// (`actor_seed` + index) and throttles itself to the hello's version
/// window.
///
/// # Errors
///
/// [`NetError`] if the connection or handshake fails, or the learner
/// violates the control protocol.
pub fn run_actor(
    envs: &mut [Box<dyn Env>],
    addr: &str,
    net: &NetConfig,
) -> Result<u64, NetError> {
    assert!(!envs.is_empty(), "need at least one environment");
    let mut stream = connect_with_retry(addr, net.retries, net.timeout)?;
    let payload = read_frame(&mut stream).map_err(|e| io_protocol("read LearnerHello", &e))?;
    let hello: LearnerHello =
        dosco_net::decode_msg(&payload).map_err(|e| io_protocol("decode LearnerHello", &e))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| io_protocol("clone learner stream", &e))?;
    let ctrl: BoxRx<ActorCtrl> = receiver_on(read_half, net.capacity);
    let batches: BoxTx<ExperienceBatch> = sender_on(stream, net.capacity);

    match hello.mode {
        Mode::Sync => run_sync_actor(envs, &hello, ctrl.as_ref(), batches.as_ref()),
        Mode::Async => run_async_actor(envs, &hello, ctrl.as_ref(), batches.as_ref()),
    }
}

/// Lockstep: collect under the current snapshot, ship batch + RNG, block
/// for the reply. Control-stream disconnect is the normal exit (the
/// learner finished and kept the RNG after its final update).
fn run_sync_actor(
    envs: &mut [Box<dyn Env>],
    hello: &LearnerHello,
    ctrl: &dyn Rx<ActorCtrl>,
    batches: &dyn dosco_net::Tx<ExperienceBatch>,
) -> Result<u64, NetError> {
    let state = hello
        .rng
        .ok_or_else(|| NetError::Protocol("sync-mode hello carried no RNG state".into()))?;
    let mut rng = StdRng::from_state(state);
    let mut snap = Arc::new(hello.snapshot.clone());
    let mut collector = RolloutCollector::new(envs);
    let mut sent = 0u64;
    loop {
        let rollout = collector.collect(
            envs,
            &snap.actor,
            &snap.critic,
            hello.params.n_steps,
            hello.params.gamma,
            hello.params.gae_lambda,
            &mut rng,
        );
        let batch = ExperienceBatch {
            rollout,
            version: snap.version,
            rng: Some(rng),
        };
        if batches.send(batch).is_err() {
            return Ok(sent); // learner gone mid-send
        }
        sent += 1;
        match ctrl.recv() {
            Ok(ActorCtrl::Reply {
                snapshot,
                rng: state,
            }) => {
                snap = Arc::new(snapshot);
                rng = StdRng::from_state(state);
            }
            Ok(ActorCtrl::Publish(_)) => {
                return Err(NetError::Protocol(
                    "unexpected Publish on a sync-mode control stream".into(),
                ))
            }
            Err(_) => return Ok(sent), // clean finish: learner kept the RNG
        }
    }
}

/// Overlapped: keep collecting under the freshest snapshot seen, throttled
/// by the version window (the remote stand-in for the in-process SSP
/// gate).
fn run_async_actor(
    envs: &mut [Box<dyn Env>],
    hello: &LearnerHello,
    ctrl: &dyn Rx<ActorCtrl>,
    batches: &dyn dosco_net::Tx<ExperienceBatch>,
) -> Result<u64, NetError> {
    // Identical derivation to an in-process actor thread, so a remote actor
    // at index i draws the same action stream its in-process twin would.
    let mut rng = StdRng::seed_from_u64(
        hello
            .actor_seed
            .wrapping_add(hello.actor_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1),
    );
    let mut snap = Arc::new(hello.snapshot.clone());
    let mut collector = RolloutCollector::new(envs);
    let mut sent = 0u64;
    loop {
        // Drain every published snapshot without blocking, keeping the
        // freshest; then block only while outside the version window.
        loop {
            match ctrl.try_recv() {
                Ok(ActorCtrl::Publish(s)) => {
                    if s.version > snap.version {
                        snap = Arc::new(s);
                    }
                }
                Ok(ActorCtrl::Reply { .. }) => {
                    return Err(NetError::Protocol(
                        "unexpected Reply on an async-mode control stream".into(),
                    ))
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Ok(sent),
            }
        }
        while sent.saturating_sub(snap.version) > hello.skew {
            match ctrl.recv() {
                Ok(ActorCtrl::Publish(s)) => {
                    if s.version > snap.version {
                        snap = Arc::new(s);
                    }
                }
                Ok(ActorCtrl::Reply { .. }) => {
                    return Err(NetError::Protocol(
                        "unexpected Reply on an async-mode control stream".into(),
                    ))
                }
                Err(_) => return Ok(sent),
            }
        }
        let rollout = collector.collect(
            envs,
            &snap.actor,
            &snap.critic,
            hello.params.n_steps,
            hello.params.gamma,
            hello.params.gae_lambda,
            &mut rng,
        );
        let batch = ExperienceBatch {
            rollout,
            version: snap.version,
            rng: None,
        };
        if batches.send(batch).is_err() {
            return Ok(sent);
        }
        sent += 1;
    }
}
