//! Runtime counters (atomics shared between actors and learner) and the
//! serializable report surfaced through the bench plumbing.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters updated by actors and the learner while the
/// runtime is live; snapshotted into a [`RuntimeReport`] at shutdown.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    /// Batches successfully handed to the channel by actors.
    pub(crate) batches_produced: AtomicU64,
    /// Batches the learner consumed into updates.
    pub(crate) batches_consumed: AtomicU64,
    /// Batches still in flight at shutdown, recovered by the drain.
    pub(crate) batches_drained: AtomicU64,
    /// Policy snapshot versions published by the learner.
    pub(crate) snapshots_published: AtomicU64,
    /// Sum over consumed batches of (learner version − batch version).
    pub(crate) staleness_sum: AtomicU64,
    /// Maximum staleness observed at consumption.
    pub(crate) staleness_max: AtomicU64,
    /// `try_send` rejections due to a full channel (each followed by a
    /// blocking send) — the backpressure signal.
    pub(crate) channel_full_stalls: AtomicU64,
    /// Times an actor blocked on the staleness clock gate.
    pub(crate) gate_waits: AtomicU64,
    /// Nanoseconds actors spent blocked in full-channel sends.
    pub(crate) send_wait_ns: AtomicU64,
    /// Nanoseconds the learner spent waiting to receive batches.
    pub(crate) recv_wait_ns: AtomicU64,
    /// Nanoseconds spent cloning and publishing policy snapshots.
    pub(crate) publish_ns: AtomicU64,
}

impl Counters {
    pub(crate) fn inc(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_ns(field: &AtomicU64, ns: u64) {
        field.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn record_staleness(&self, staleness: u64) {
        self.staleness_sum.fetch_add(staleness, Ordering::Relaxed);
        self.staleness_max.fetch_max(staleness, Ordering::Relaxed);
    }

    pub(crate) fn report(&self, mode: &str, n_actors: usize, staleness_bound: u64) -> RuntimeReport {
        let consumed = self.batches_consumed.load(Ordering::Relaxed);
        let sum = self.staleness_sum.load(Ordering::Relaxed);
        RuntimeReport {
            mode: mode.to_string(),
            n_actors,
            batches_produced: self.batches_produced.load(Ordering::Relaxed),
            batches_consumed: consumed,
            batches_in_flight: self.batches_drained.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            mean_staleness: if consumed == 0 {
                0.0
            } else {
                sum as f64 / consumed as f64
            },
            max_staleness: self.staleness_max.load(Ordering::Relaxed),
            staleness_bound,
            channel_full_stalls: self.channel_full_stalls.load(Ordering::Relaxed),
            gate_waits: self.gate_waits.load(Ordering::Relaxed),
            send_wait_ms: self.send_wait_ns.load(Ordering::Relaxed) as f64 / 1e6,
            recv_wait_ms: self.recv_wait_ns.load(Ordering::Relaxed) as f64 / 1e6,
            publish_ms: self.publish_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Counter snapshot of one runtime training run. Conservation invariant:
/// `batches_produced == batches_consumed + batches_in_flight` once the
/// runtime has shut down cleanly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Execution mode (`"sync"` / `"async"`).
    pub mode: String,
    /// Rollout-actor threads actually launched.
    pub n_actors: usize,
    /// Batches successfully enqueued by actors.
    pub batches_produced: u64,
    /// Batches consumed into learner updates.
    pub batches_consumed: u64,
    /// Batches in flight at shutdown (drained unprocessed).
    pub batches_in_flight: u64,
    /// Policy snapshot versions published.
    pub snapshots_published: u64,
    /// Mean policy staleness over consumed batches (versions).
    pub mean_staleness: f64,
    /// Maximum policy staleness observed (versions).
    pub max_staleness: u64,
    /// The configured staleness bound the run enforced.
    pub staleness_bound: u64,
    /// Full-channel stalls actors hit before blocking sends (backpressure).
    pub channel_full_stalls: u64,
    /// Times an actor blocked on the staleness clock gate.
    pub gate_waits: u64,
    /// Wall time actors spent blocked in full-channel sends, milliseconds.
    pub send_wait_ms: f64,
    /// Wall time the learner spent waiting for batches, milliseconds.
    pub recv_wait_ms: f64,
    /// Wall time spent cloning and publishing policy snapshots, milliseconds.
    pub publish_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_snapshots_counters() {
        let c = Counters::default();
        Counters::inc(&c.batches_produced);
        Counters::inc(&c.batches_produced);
        Counters::inc(&c.batches_consumed);
        Counters::inc(&c.batches_drained);
        Counters::inc(&c.snapshots_published);
        c.record_staleness(3);
        let r = c.report("async", 2, 8);
        assert_eq!(r.batches_produced, 2);
        assert_eq!(r.batches_consumed + r.batches_in_flight, 2);
        assert_eq!(r.mean_staleness, 3.0);
        assert_eq!(r.max_staleness, 3);
        assert_eq!(r.staleness_bound, 8);
        assert_eq!(r.mode, "async");
    }

    #[test]
    fn empty_run_has_zero_mean_staleness() {
        let r = Counters::default().report("sync", 1, 0);
        assert_eq!(r.mean_staleness, 0.0);
        assert_eq!(r.batches_produced, 0);
        assert_eq!(r.send_wait_ms, 0.0);
        assert_eq!(r.recv_wait_ms, 0.0);
        assert_eq!(r.publish_ms, 0.0);
    }

    #[test]
    fn wait_times_accumulate_to_milliseconds() {
        let c = Counters::default();
        Counters::add_ns(&c.send_wait_ns, 1_500_000);
        Counters::add_ns(&c.send_wait_ns, 500_000);
        Counters::add_ns(&c.recv_wait_ns, 250_000);
        Counters::add_ns(&c.publish_ns, 3_000_000);
        let r = c.report("async", 2, 8);
        assert!((r.send_wait_ms - 2.0).abs() < 1e-12);
        assert!((r.recv_wait_ms - 0.25).abs() < 1e-12);
        assert!((r.publish_ms - 3.0).abs() < 1e-12);
    }
}
