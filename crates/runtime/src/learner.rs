//! The [`Learner`] trait the runtime drives, implemented for the three
//! `dosco_rl` algorithms (A2C, ACKTR, PPO).

use dosco_nn::mlp::Mlp;
use dosco_rl::a2c::A2c;
use dosco_rl::acktr::Acktr;
use dosco_rl::ppo::Ppo;
use dosco_rl::rollout::Rollout;
use rand::rngs::StdRng;

/// Collection hyperparameters the actors need from the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CollectParams {
    /// Steps collected per env per batch.
    pub n_steps: usize,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
}

/// An algorithm the actor–learner runtime can train: exposes its networks
/// for snapshotting, its collection hyperparameters for the actors, its
/// sampling RNG for circulation, and a single-batch update entry point.
pub trait Learner: Send {
    /// Collection hyperparameters for the rollout actors.
    fn collect_params(&self) -> CollectParams;

    /// The current actor network.
    fn actor(&self) -> &Mlp;

    /// The current critic network.
    fn critic(&self) -> &Mlp;

    /// Moves the agent's sampling RNG out (see `take_rng` on the
    /// algorithms): in sync mode the runtime circulates this exact stream
    /// between the collecting actor and the updating learner.
    fn take_rng(&mut self) -> StdRng;

    /// Restores the RNG at shutdown so later (serial) training continues
    /// the stream.
    fn restore_rng(&mut self, rng: StdRng);

    /// `Some(base_lr)` if the algorithm's serial loop linearly decays the
    /// learning rate to 10 % over the training horizon, `None` otherwise.
    /// The runtime replays the same schedule against consumed steps.
    fn lr_schedule(&self) -> Option<f32>;

    /// Overwrites the current learning rate.
    fn set_lr(&mut self, lr: f32);

    /// Applies one update from a collected (possibly aggregated) rollout.
    /// `rng` is the stream for any update-time sampling (ACKTR's Fisher
    /// factors); A2C and PPO ignore it.
    fn update_batch(&mut self, rollout: &mut Rollout, rng: &mut StdRng);
}

impl Learner for A2c {
    fn collect_params(&self) -> CollectParams {
        CollectParams {
            n_steps: self.config().n_steps,
            gamma: self.config().gamma,
            gae_lambda: self.config().gae_lambda,
        }
    }

    fn actor(&self) -> &Mlp {
        self.actor()
    }

    fn critic(&self) -> &Mlp {
        self.critic()
    }

    fn take_rng(&mut self) -> StdRng {
        A2c::take_rng(self)
    }

    fn restore_rng(&mut self, rng: StdRng) {
        A2c::restore_rng(self, rng);
    }

    fn lr_schedule(&self) -> Option<f32> {
        self.config().lr_decay.then_some(self.config().lr)
    }

    fn set_lr(&mut self, lr: f32) {
        A2c::set_lr(self, lr);
    }

    fn update_batch(&mut self, rollout: &mut Rollout, rng: &mut StdRng) {
        A2c::update_batch(self, rollout, rng);
    }
}

impl Learner for Acktr {
    fn collect_params(&self) -> CollectParams {
        CollectParams {
            n_steps: self.config().n_steps,
            gamma: self.config().gamma,
            gae_lambda: self.config().gae_lambda,
        }
    }

    fn actor(&self) -> &Mlp {
        self.actor()
    }

    fn critic(&self) -> &Mlp {
        self.critic()
    }

    fn take_rng(&mut self) -> StdRng {
        Acktr::take_rng(self)
    }

    fn restore_rng(&mut self, rng: StdRng) {
        Acktr::restore_rng(self, rng);
    }

    fn lr_schedule(&self) -> Option<f32> {
        self.config().lr_decay.then_some(self.config().lr)
    }

    fn set_lr(&mut self, lr: f32) {
        Acktr::set_lr(self, lr);
    }

    fn update_batch(&mut self, rollout: &mut Rollout, rng: &mut StdRng) {
        Acktr::update_batch(self, rollout, rng);
    }
}

impl Learner for Ppo {
    fn collect_params(&self) -> CollectParams {
        CollectParams {
            n_steps: self.config().n_steps,
            gamma: self.config().gamma,
            gae_lambda: self.config().gae_lambda,
        }
    }

    fn actor(&self) -> &Mlp {
        self.actor()
    }

    fn critic(&self) -> &Mlp {
        self.critic()
    }

    fn take_rng(&mut self) -> StdRng {
        Ppo::take_rng(self)
    }

    fn restore_rng(&mut self, rng: StdRng) {
        Ppo::restore_rng(self, rng);
    }

    fn lr_schedule(&self) -> Option<f32> {
        None // PPO's serial loop applies no internal decay
    }

    fn set_lr(&mut self, lr: f32) {
        Ppo::set_lr(self, lr);
    }

    fn update_batch(&mut self, rollout: &mut Rollout, rng: &mut StdRng) {
        Ppo::update_batch(self, rollout, rng);
    }
}
