//! The actor–learner training driver: env sharding, actor threads, the
//! learner loop, staleness gating, and graceful shutdown.
//!
//! Thread topology of one [`train`] call:
//!
//! ```text
//!  actor 0 ──┐  bounded Tx/Rx (ExperienceBatch) ┌────────────┐
//!  actor 1 ──┼──────────────────────────────────▶│  learner   │
//!  actor N ──┘                                   │ (caller's  │
//!      ▲                                         │  thread)   │
//!      │   PolicySlot (Arc<PolicySnapshot>)      └────────────┘
//!      └────────── versioned broadcast ◀───────────────┘
//! ```
//!
//! The channels are [`dosco_net`] transport channels: [`train`] wires the
//! planes over [`InProcess`] (the original bounded crossbeam channels —
//! bit-identical by construction), while [`train_with_transport`] accepts
//! any [`Transport`] — e.g. `dosco_net::SocketLoopback`, which routes every
//! batch through the framed binary codec over real TCP sockets, or the
//! multi-process deployment in [`crate::remote`].
//!
//! Staleness is bounded by a stale-synchronous-parallel gate: every actor
//! keeps a batch clock (completed sends), and before collecting it blocks
//! until its clock is within [`RuntimeConfig::round_skew`] rounds of the
//! slowest live actor. The learner additionally asserts, on every batch it
//! consumes, that the batch's snapshot version lags its own by at most
//! [`RuntimeConfig::max_staleness`]. (Socket transports buffer up to their
//! stated capacity on *each* end plus whatever the kernel holds, so async
//! deployments over sockets should budget `max_staleness` with headroom;
//! sync mode is lockstep and unaffected.)
//!
//! Shutdown (normal or panicking) always follows the same sequence: close
//! the slot and the clock gate (via a drop guard, so learner panics take
//! the same path), drop the sync-mode return channel, drain the experience
//! channel until every sender disconnects, join all actors, and re-raise
//! the first actor panic.

use crate::config::{Mode, RuntimeConfig};
use crate::counters::{Counters, RuntimeReport};
use crate::learner::{CollectParams, Learner};
use crate::snapshot::{PolicySlot, PolicySnapshot};
use crate::wire::{ExperienceBatch, SyncReply};
use crossbeam::channel::{SendError, TrySendError};
use dosco_net::{InProcess, Rx, Transport, Tx};
use dosco_rl::a2c::TrainStats;
use dosco_rl::env::Env;
use dosco_rl::rollout::{Rollout, RolloutCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The outcome of one runtime training run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// Per-update training statistics (same shape as the serial loops').
    pub stats: TrainStats,
    /// Runtime counters at shutdown.
    pub report: RuntimeReport,
}

/// Per-actor batch clocks implementing the stale-synchronous-parallel
/// gate. `u64::MAX` marks an exited actor so survivors are never gated on
/// a dead peer.
struct Clocks {
    state: Mutex<ClockState>,
    cond: Condvar,
}

struct ClockState {
    clocks: Vec<u64>,
    closed: bool,
}

impl Clocks {
    fn new(n: usize) -> Self {
        Clocks {
            state: Mutex::new(ClockState {
                clocks: vec![0; n],
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Blocks actor `idx` until its clock is within `skew` of the slowest
    /// live actor (the SSP condition). Returns `false` once the runtime
    /// closed. The slowest actor always passes, so progress is guaranteed.
    fn wait_turn(&self, idx: usize, skew: u64, counters: &Counters) -> bool {
        let mut st = self.state.lock().expect("clock lock poisoned");
        let mut waited = false;
        loop {
            if st.closed {
                return false;
            }
            let me = st.clocks[idx];
            let min = st
                .clocks
                .iter()
                .copied()
                .filter(|&c| c != u64::MAX)
                .min()
                .unwrap_or(me);
            if me.saturating_sub(min) <= skew {
                return true;
            }
            if !waited {
                waited = true;
                Counters::inc(&counters.gate_waits);
            }
            st = self.cond.wait(st).expect("clock lock poisoned");
        }
    }

    fn advance(&self, idx: usize) {
        self.state.lock().expect("clock lock poisoned").clocks[idx] += 1;
        self.cond.notify_all();
    }

    fn finish(&self, idx: usize) {
        self.state.lock().expect("clock lock poisoned").clocks[idx] = u64::MAX;
        self.cond.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("clock lock poisoned").closed = true;
        self.cond.notify_all();
    }
}

/// Closes the policy slot and the clock gate when the learner section
/// exits — normally or by panic — so actors always wake up and drain.
struct CloseGuard<'a> {
    slot: &'a PolicySlot,
    clocks: &'a Clocks,
}

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.slot.close();
        self.clocks.close();
    }
}

/// Marks an actor's clock finished on exit (including panic) so surviving
/// actors are not gated on a dead peer.
struct ClockGuard<'a> {
    clocks: &'a Clocks,
    idx: usize,
}

impl Drop for ClockGuard<'_> {
    fn drop(&mut self) {
        self.clocks.finish(self.idx);
    }
}

/// State shared read-only with every actor thread.
struct ActorShared<'a> {
    params: CollectParams,
    skew: u64,
    slot: &'a PolicySlot,
    clocks: &'a Clocks,
    counters: &'a Counters,
}

/// One rollout actor: collect under the current snapshot, send, advance
/// the clock; in sync mode (`ret_rx` present) additionally circulate the
/// agent RNG and wait for the learner's reply before the next batch.
/// Returns the RNG if this actor still holds it at exit.
fn actor_loop(
    shared: &ActorShared<'_>,
    idx: usize,
    envs: &mut [Box<dyn Env>],
    tx: &dyn Tx<ExperienceBatch>,
    mut rng_holder: Option<StdRng>,
    ret_rx: Option<&dyn Rx<SyncReply>>,
) -> Option<StdRng> {
    let circulate = ret_rx.is_some();
    let mut collector = RolloutCollector::new(envs);
    let mut snap = shared.slot.latest();
    loop {
        if shared.slot.is_closed() {
            return rng_holder;
        }
        if !shared.clocks.wait_turn(idx, shared.skew, shared.counters) {
            return rng_holder;
        }
        if !circulate {
            // Async: pick up the latest snapshot at the batch boundary.
            snap = shared.slot.latest();
        }
        let mut rng = rng_holder.take().expect("actor holds an RNG when collecting");
        let rollout = collector.collect(
            envs,
            &snap.actor,
            &snap.critic,
            shared.params.n_steps,
            shared.params.gamma,
            shared.params.gae_lambda,
            &mut rng,
        );
        let batch_rng = if circulate {
            Some(rng) // travels to the learner's update, comes back below
        } else {
            rng_holder = Some(rng);
            None
        };
        let msg = ExperienceBatch {
            rollout,
            version: snap.version,
            rng: batch_rng,
        };
        let version = msg.version;
        // try_send first so full-channel backpressure is observable.
        let msg = match tx.try_send(msg) {
            Ok(()) => None,
            Err(TrySendError::Full(m)) => {
                Counters::inc(&shared.counters.channel_full_stalls);
                Some(m)
            }
            Err(TrySendError::Disconnected(m)) => return rng_holder.or(m.rng),
        };
        if let Some(m) = msg {
            // The blocking fallback is the channel-send wait worth
            // measuring; the try_send fast path never blocks.
            let wait = Instant::now();
            let sent = tx.send(m);
            let ns = u64::try_from(wait.elapsed().as_nanos()).unwrap_or(u64::MAX);
            Counters::add_ns(&shared.counters.send_wait_ns, ns);
            dosco_obs::registry::record_span_ns(dosco_obs::SpanKind::ChannelSend, ns);
            if let Err(SendError(m)) = sent {
                return rng_holder.or(m.rng);
            }
        }
        Counters::inc(&shared.counters.batches_produced);
        dosco_obs::emit(dosco_obs::Stream::actor(idx as u64), || {
            dosco_obs::Event::BatchProduced {
                actor: idx as u64,
                version,
                transitions: (shared.params.n_steps * envs.len()) as u64,
            }
        });
        shared.clocks.advance(idx);
        if let Some(ret) = ret_rx {
            match ret.recv() {
                Ok(reply) => {
                    snap = reply.snapshot;
                    rng_holder = Some(reply.rng);
                }
                // Learner finished and kept the RNG.
                Err(_) => return None,
            }
        }
    }
}

/// The learner's consume→update→publish loop, shared verbatim by the
/// in-process driver and the multi-process learner ([`crate::remote`]) so
/// the two paths cannot drift arithmetically: transport and broadcast are
/// injected (`rx`, `publish`, `reply`), everything numeric lives here.
///
/// `reply` carries the sync-mode lockstep response; it returns the RNG on
/// failure (actor gone), which ends the loop. `cancel`, when set, stops
/// the loop at the next batch boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_learner_loop<L: Learner>(
    learner: &mut L,
    rx: &dyn Rx<ExperienceBatch>,
    config: &RuntimeConfig,
    total_steps: usize,
    counters: &Counters,
    final_rng: &mut Option<StdRng>,
    cancel: Option<&AtomicBool>,
    mut publish: impl FnMut(Arc<PolicySnapshot>),
    mut reply: impl FnMut(Arc<PolicySnapshot>, StdRng) -> Result<(), StdRng>,
) -> TrainStats {
    let base_lr = learner.lr_schedule();
    let mut stats = TrainStats::default();
    let mut version = 0u64;
    'learn: while stats.total_steps < total_steps {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            break 'learn;
        }
        let mut merged: Option<Rollout> = None;
        let mut circ_rng: Option<StdRng> = None;
        for _ in 0..config.minibatch_batches {
            let wait = Instant::now();
            let received = rx.recv();
            let ns = u64::try_from(wait.elapsed().as_nanos()).unwrap_or(u64::MAX);
            Counters::add_ns(&counters.recv_wait_ns, ns);
            dosco_obs::registry::record_span_ns(dosco_obs::SpanKind::ChannelRecv, ns);
            match received {
                Ok(batch) => {
                    Counters::inc(&counters.batches_consumed);
                    let staleness = version - batch.version;
                    counters.record_staleness(staleness);
                    dosco_obs::registry::observe(
                        dosco_obs::HistKind::Staleness,
                        staleness as f64,
                    );
                    dosco_obs::emit(dosco_obs::Stream::learner(), || {
                        dosco_obs::Event::BatchConsumed {
                            version: batch.version,
                            learner_version: version,
                            staleness,
                        }
                    });
                    assert!(
                        staleness <= config.max_staleness,
                        "staleness bound violated: batch from version {} consumed \
                         at version {version} (bound {})",
                        batch.version,
                        config.max_staleness
                    );
                    if batch.rng.is_some() {
                        circ_rng = batch.rng;
                    }
                    merged = Some(match merged {
                        None => batch.rollout,
                        Some(mut m) => {
                            m.append(&batch.rollout);
                            m
                        }
                    });
                }
                // Every actor exited (shutdown race or panic):
                // update on what arrived, then stop.
                Err(_) => break,
            }
        }
        let Some(mut rollout) = merged else {
            break 'learn;
        };
        if let Some(base) = base_lr {
            // Replay the serial loops' linear decay to 10 %.
            let frac = stats.total_steps as f32 / total_steps as f32;
            learner.set_lr(base * (1.0 - 0.9 * frac));
        }
        {
            let _span = dosco_obs::span(dosco_obs::SpanKind::LearnerUpdate);
            let rng = circ_rng
                .as_mut()
                .or(final_rng.as_mut())
                .expect("learner always has an update RNG");
            learner.update_batch(&mut rollout, rng);
        }
        version += 1;
        Counters::inc(&counters.snapshots_published);
        stats.mean_rewards.push(rollout.mean_reward());
        stats.total_steps += rollout.actions.len();
        let publish_start = Instant::now();
        let snap = Arc::new(PolicySnapshot {
            version,
            actor: learner.actor().clone(),
            critic: learner.critic().clone(),
        });
        publish(Arc::clone(&snap));
        let publish_ns = u64::try_from(publish_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Counters::add_ns(&counters.publish_ns, publish_ns);
        dosco_obs::registry::record_span_ns(dosco_obs::SpanKind::SnapshotPublish, publish_ns);
        dosco_obs::emit(dosco_obs::Stream::learner(), || {
            dosco_obs::Event::SnapshotPublished {
                version,
                total_steps: stats.total_steps as u64,
            }
        });
        if let Some(r) = circ_rng.take() {
            // Sync lockstep: hand snapshot + RNG back — except after
            // the final update, so the actor collects no extra batch.
            if stats.total_steps >= total_steps {
                *final_rng = Some(r);
            } else if let Err(r) = reply(snap, r) {
                *final_rng = Some(r);
                break 'learn;
            }
        }
    }
    stats
}

/// Trains `learner` for (at least) `total_steps` environment transitions
/// across `envs` using the actor–learner runtime over the in-process
/// transport. In [`Mode::Sync`] the result — trained weights, statistics,
/// and the agent's RNG stream — is bit-identical to the algorithm's own
/// serial `train` loop; in [`Mode::Async`] collection and learning
/// overlap, with policy staleness bounded by
/// [`RuntimeConfig::max_staleness`].
///
/// # Panics
///
/// Panics if the configuration is invalid, `envs` is empty, the observed
/// staleness ever exceeds the configured bound, or any actor thread
/// panics (the panic is re-raised after shutdown).
pub fn train<L: Learner>(
    learner: &mut L,
    envs: &mut [Box<dyn Env>],
    total_steps: usize,
    config: &RuntimeConfig,
) -> RuntimeOutcome {
    train_inner(learner, envs, total_steps, config, &InProcess, None)
}

/// [`train`] over an arbitrary [`Transport`]: every experience batch and
/// sync-mode reply crosses a channel opened by `transport`, so e.g.
/// `dosco_net::SocketLoopback` runs the identical dataflow through framed,
/// checksummed TCP streams. With [`dosco_net::InProcess`] this *is*
/// [`train`].
///
/// # Panics
///
/// As [`train`].
pub fn train_with_transport<L, Tr>(
    learner: &mut L,
    envs: &mut [Box<dyn Env>],
    total_steps: usize,
    config: &RuntimeConfig,
    transport: &Tr,
) -> RuntimeOutcome
where
    L: Learner,
    Tr: Transport<ExperienceBatch> + Transport<SyncReply>,
{
    train_inner(learner, envs, total_steps, config, transport, None)
}

/// [`train`] with a cooperative cancellation flag: setting `cancel` stops
/// the learner at the next batch boundary, after which shutdown proceeds
/// exactly as a normal completion (drain, join, RNG restore). Used by the
/// `dosco_ctl` job-control surface.
///
/// # Panics
///
/// As [`train`].
pub fn train_cancellable<L: Learner>(
    learner: &mut L,
    envs: &mut [Box<dyn Env>],
    total_steps: usize,
    config: &RuntimeConfig,
    cancel: &AtomicBool,
) -> RuntimeOutcome {
    train_inner(learner, envs, total_steps, config, &InProcess, Some(cancel))
}

fn train_inner<L, Tr>(
    learner: &mut L,
    envs: &mut [Box<dyn Env>],
    total_steps: usize,
    config: &RuntimeConfig,
    transport: &Tr,
    cancel: Option<&AtomicBool>,
) -> RuntimeOutcome
where
    L: Learner,
    Tr: Transport<ExperienceBatch> + Transport<SyncReply>,
{
    config.validate().expect("invalid runtime configuration");
    assert!(!envs.is_empty(), "need at least one environment");

    let sync = config.mode == Mode::Sync;
    let requested = if sync { 1 } else { config.n_actors.min(envs.len()) };
    let shard = envs.len().div_ceil(requested);
    let n_actors = envs.len().div_ceil(shard);
    let params = learner.collect_params();
    let skew = if sync { 0 } else { config.round_skew() };

    let counters = Counters::default();
    let clocks = Clocks::new(n_actors);
    let slot = PolicySlot::new(PolicySnapshot {
        version: 0,
        actor: learner.actor().clone(),
        critic: learner.critic().clone(),
    });
    let agent_rng = learner.take_rng();
    let (tx, rx) = Transport::<ExperienceBatch>::channel(transport, config.channel_capacity);
    // Sync-mode reply channel carrying (snapshot, RNG) back to the actor.
    let ret_pair = if sync {
        let (t, r) = Transport::<SyncReply>::channel(transport, 1);
        (Some(t), Some(r))
    } else {
        (None, None)
    };
    let shared = ActorShared {
        params,
        skew,
        slot: &slot,
        clocks: &clocks,
        counters: &counters,
    };

    let (stats, final_rng) = crossbeam::thread::scope(|s| {
        let shared = &shared;
        let (ret_tx_opt, mut ret_rx_opt) = ret_pair;
        let mut agent_rng_opt = Some(agent_rng);
        let mut handles = Vec::with_capacity(n_actors);
        for (idx, shard_envs) in envs.chunks_mut(shard).enumerate() {
            let tx = tx.clone_box();
            let rng = if sync {
                agent_rng_opt.take().expect("sync mode runs one actor")
            } else {
                // Independent per-actor streams derived from the base seed.
                StdRng::seed_from_u64(
                    config
                        .actor_seed
                        .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1),
                )
            };
            let ret_rx = ret_rx_opt.take();
            handles.push(s.spawn(move |_| {
                let _clock_guard = ClockGuard {
                    clocks: shared.clocks,
                    idx,
                };
                actor_loop(shared, idx, shard_envs, tx.as_ref(), Some(rng), ret_rx.as_deref())
            }));
        }
        drop(tx); // channel disconnect now tracks the actors alone

        // Holds the agent RNG whenever neither an actor nor an in-flight
        // batch does: the whole stream in async mode, the post-final-update
        // stream in sync mode.
        let mut final_rng = agent_rng_opt;
        let stats;
        {
            let _close = CloseGuard {
                slot: &slot,
                clocks: &clocks,
            };
            stats = run_learner_loop(
                learner,
                rx.as_ref(),
                config,
                total_steps,
                &counters,
                &mut final_rng,
                cancel,
                |snap| slot.publish(snap),
                |snap, rng| {
                    let ret_tx = ret_tx_opt
                        .as_ref()
                        .expect("a circulating RNG implies sync mode");
                    ret_tx
                        .send(SyncReply {
                            snapshot: snap,
                            rng,
                        })
                        .map_err(|SendError(reply)| reply.rng)
                },
            );
            drop(ret_tx_opt); // unblock a sync actor waiting for its reply
        } // CloseGuard: slot + clock gate close (also on learner panic)

        // Drain in-flight batches (frees blocked senders) until the last
        // sender disconnects; recover a circulating RNG if one is queued.
        while let Ok(batch) = rx.recv() {
            Counters::inc(&counters.batches_drained);
            if batch.rng.is_some() {
                final_rng = batch.rng;
            }
        }
        // Join every actor; re-raise the first panic after all joined.
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(Some(r)) => final_rng = Some(r),
                Ok(None) => {}
                Err(p) => {
                    panic.get_or_insert(p);
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        (stats, final_rng)
    })
    .expect("crossbeam scope failed");

    learner.restore_rng(final_rng.expect("the runtime recovers the agent RNG at shutdown"));
    RuntimeOutcome {
        report: counters.report(config.mode.name(), n_actors, config.max_staleness),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gate_blocks_fast_actors_only() {
        let clocks = Clocks::new(2);
        let counters = Counters::default();
        // Both at 0: either passes at skew 0.
        assert!(clocks.wait_turn(0, 0, &counters));
        assert!(clocks.wait_turn(1, 0, &counters));
        clocks.advance(0); // actor 0 now one round ahead
        assert!(clocks.wait_turn(1, 0, &counters), "slowest always passes");
        assert!(clocks.wait_turn(0, 1, &counters), "within skew 1 passes");
        // At skew 0 actor 0 would block — verify via a closed gate instead
        // of a real wait: close wakes and rejects.
        clocks.close();
        assert!(!clocks.wait_turn(0, 0, &counters));
    }

    #[test]
    fn finished_actors_do_not_gate_survivors() {
        let clocks = Clocks::new(2);
        let counters = Counters::default();
        clocks.advance(0);
        clocks.advance(0);
        clocks.finish(1); // actor 1 exits at clock 0
        assert!(
            clocks.wait_turn(0, 0, &counters),
            "dead peers are excluded from the minimum"
        );
    }
}
