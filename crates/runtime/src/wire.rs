//! Wire-format message types of the actor–learner plane.
//!
//! These are the typed messages that cross a [`dosco_net`] transport
//! channel: the experience batch actors ship to the learner, the sync-mode
//! lockstep reply, and the handshake/control messages of the multi-process
//! deployment ([`crate::remote`]). All of them serialize through the
//! vendored serde so the socket transport's bit-exact binary codec can
//! carry them; the circulating [`StdRng`] travels as its four-word
//! xoshiro256++ state and resumes the identical stream on the other side.

use crate::learner::CollectParams;
use crate::snapshot::PolicySnapshot;
use dosco_rl::rollout::Rollout;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// One experience message from an actor to the learner.
#[derive(Debug)]
pub struct ExperienceBatch {
    /// The collected rollout.
    pub rollout: Rollout,
    /// Snapshot version the rollout was collected under.
    pub version: u64,
    /// Sync mode only: the circulating agent RNG.
    pub rng: Option<StdRng>,
}

impl Serialize for ExperienceBatch {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rollout".to_owned(), self.rollout.to_value()),
            ("version".to_owned(), self.version.to_value()),
            (
                "rng".to_owned(),
                self.rng.as_ref().map(StdRng::state).to_value(),
            ),
        ])
    }
}

impl Deserialize for ExperienceBatch {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::new("expected object for ExperienceBatch"))?;
        Ok(ExperienceBatch {
            rollout: serde::field(obj, "rollout", "ExperienceBatch")?,
            version: serde::field(obj, "version", "ExperienceBatch")?,
            rng: serde::field::<Option<[u64; 4]>>(obj, "rng", "ExperienceBatch")?
                .map(StdRng::from_state),
        })
    }
}

/// Sync-mode lockstep reply: the post-update snapshot and the agent RNG
/// handed back to the single actor for its next collection round.
#[derive(Debug)]
pub struct SyncReply {
    /// The snapshot published by the update this reply follows.
    pub snapshot: Arc<PolicySnapshot>,
    /// The circulating agent RNG, advanced by the learner's update.
    pub rng: StdRng,
}

impl Serialize for SyncReply {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("snapshot".to_owned(), self.snapshot.to_value()),
            ("rng".to_owned(), self.rng.state().to_value()),
        ])
    }
}

impl Deserialize for SyncReply {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::new("expected object for SyncReply"))?;
        Ok(SyncReply {
            snapshot: serde::field(obj, "snapshot", "SyncReply")?,
            rng: StdRng::from_state(serde::field::<[u64; 4]>(obj, "rng", "SyncReply")?),
        })
    }
}

/// The learner's handshake to a connecting remote actor: everything the
/// actor process needs to mirror an in-process actor thread.
#[derive(Debug, Serialize, Deserialize)]
pub struct LearnerHello {
    /// Runtime mode (drives lockstep vs overlapped actor behavior).
    pub mode: crate::config::Mode,
    /// Collection hyperparameters from the algorithm.
    pub params: CollectParams,
    /// This actor's index (assigned by accept order).
    pub actor_index: u64,
    /// Base seed for per-actor RNG streams (async mode).
    pub actor_seed: u64,
    /// Version-window the actor may run ahead of the last snapshot it has
    /// seen (the remote stand-in for the in-process clock gate; 0 in sync
    /// mode).
    pub skew: u64,
    /// The initial (version 0) snapshot.
    pub snapshot: PolicySnapshot,
    /// Sync mode: the agent RNG state the actor starts from.
    pub rng: Option<[u64; 4]>,
}

/// Control messages streamed from the learner to a remote actor.
#[derive(Debug, Serialize, Deserialize)]
pub enum ActorCtrl {
    /// Async mode: a freshly published snapshot.
    Publish(PolicySnapshot),
    /// Sync mode: the lockstep reply after an update.
    Reply {
        /// The post-update snapshot.
        snapshot: PolicySnapshot,
        /// The circulating agent RNG state.
        rng: [u64; 4],
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_nn::matrix::Matrix;
    use rand::{Rng, SeedableRng};

    fn tiny_rollout() -> Rollout {
        Rollout {
            obs: Matrix::from_vec(2, 3, vec![0.5, -1.25, f32::MIN_POSITIVE, 0.0, -0.0, 3.5]),
            actions: vec![1, 0],
            rewards: vec![0.25, -1.0],
            dones: vec![false, true],
            values: vec![0.1, 0.2],
            returns: vec![1.0, 2.0],
            advantages: vec![0.3, -0.4],
            n_envs: 2,
            n_steps: 1,
            reward_sum: -0.75,
        }
    }

    /// The batch survives the full socket codec path bitwise, and the RNG
    /// resumes the identical stream.
    #[test]
    fn experience_batch_round_trips_through_the_net_codec() {
        let mut rng = StdRng::seed_from_u64(99);
        let _burn: u64 = rng.gen();
        let mut reference = rng.clone();
        let batch = ExperienceBatch {
            rollout: tiny_rollout(),
            version: 41,
            rng: Some(rng),
        };
        let payload = dosco_net::encode_msg(&batch);
        let back: ExperienceBatch = dosco_net::decode_msg(&payload).expect("decode");
        assert_eq!(back.rollout, batch.rollout);
        assert_eq!(back.version, 41);
        let mut resumed = back.rng.expect("rng travels");
        for _ in 0..64 {
            assert_eq!(resumed.gen::<u64>(), reference.gen::<u64>());
        }
    }

    #[test]
    fn sync_reply_round_trips() {
        let snap = PolicySnapshot {
            version: 7,
            actor: dosco_nn::mlp::Mlp::new(&[3, 4, 2], dosco_nn::mlp::Activation::Tanh, &mut StdRng::seed_from_u64(11)),
            critic: dosco_nn::mlp::Mlp::new(&[3, 4, 1], dosco_nn::mlp::Activation::Tanh, &mut StdRng::seed_from_u64(12)),
        };
        let reply = SyncReply {
            snapshot: Arc::new(snap.clone()),
            rng: StdRng::seed_from_u64(5),
        };
        let payload = dosco_net::encode_msg(&reply);
        let back: SyncReply = dosco_net::decode_msg(&payload).expect("decode");
        assert_eq!(*back.snapshot, snap);
        assert_eq!(back.rng.state(), StdRng::seed_from_u64(5).state());
    }

    #[test]
    fn hello_and_ctrl_round_trip() {
        let snap = PolicySnapshot {
            version: 0,
            actor: dosco_nn::mlp::Mlp::new(&[2, 3, 2], dosco_nn::mlp::Activation::Relu, &mut StdRng::seed_from_u64(1)),
            critic: dosco_nn::mlp::Mlp::new(&[2, 3, 1], dosco_nn::mlp::Activation::Relu, &mut StdRng::seed_from_u64(2)),
        };
        let hello = LearnerHello {
            mode: crate::config::Mode::Sync,
            params: CollectParams {
                n_steps: 8,
                gamma: 0.99,
                gae_lambda: 0.95,
            },
            actor_index: 0,
            actor_seed: 0x5EED,
            skew: 0,
            snapshot: snap.clone(),
            rng: Some([1, 2, 3, 4]),
        };
        let back: LearnerHello =
            dosco_net::decode_msg(&dosco_net::encode_msg(&hello)).expect("hello");
        assert_eq!(back.mode, hello.mode);
        assert_eq!(back.params, hello.params);
        assert_eq!(back.snapshot, snap);
        assert_eq!(back.rng, Some([1, 2, 3, 4]));

        let ctrl = ActorCtrl::Reply {
            snapshot: snap.clone(),
            rng: [9, 8, 7, 6],
        };
        match dosco_net::decode_msg::<ActorCtrl>(&dosco_net::encode_msg(&ctrl)).expect("ctrl") {
            ActorCtrl::Reply { snapshot, rng } => {
                assert_eq!(snapshot, snap);
                assert_eq!(rng, [9, 8, 7, 6]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
