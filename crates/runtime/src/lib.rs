//! Actor–learner training runtime: channel-based experience transport and
//! versioned policy broadcast.
//!
//! The paper trains one logically centralized network over experience
//! pooled from many per-node agents (Sec. IV-C1), but a serial
//! `RolloutCollector::collect` → update cycle never overlaps collection
//! with learning. Following the dataflow designs of MSRL (Zhu et al.,
//! 2022) and SRL (Mei et al., 2023), this crate decouples the two behind
//! explicit channel boundaries:
//!
//! - N **rollout actors**, each owning a shard of the parallel
//!   environments, stream completed [`dosco_rl::rollout::Rollout`] batches
//!   over a bounded MPSC channel (`crossbeam::channel::bounded`) — the
//!   channel capacity is the backpressure knob;
//! - one **learner** aggregates batches into minibatches, runs the
//!   A2C/ACKTR/PPO update via the [`Learner`] trait, and publishes
//!   versioned [`PolicySnapshot`]s through a shared [`snapshot`] slot that
//!   actors pick up at batch boundaries;
//! - a configurable **staleness bound** ([`RuntimeConfig::max_staleness`])
//!   limits how far a batch's collection policy may lag behind the learner,
//!   enforced by a stale-synchronous-parallel clock gate over the actors.
//!
//! Two modes ([`Mode`]):
//!
//! - [`Mode::Sync`]: one actor in lockstep with the learner, circulating
//!   the agent's RNG with each batch — **bit-identical** to the serial
//!   training loop (proven by test);
//! - [`Mode::Async`]: overlapped collection and learning for throughput,
//!   with per-actor RNG streams and bounded policy staleness.
//!
//! Shutdown is graceful in both modes: the learner closes the policy slot
//! and clock gate, drains the experience channel, joins every actor, and
//! re-raises any actor panic. [`RuntimeReport`] surfaces the runtime
//! counters (batches produced/consumed/in-flight, snapshots published,
//! staleness statistics, channel-full stalls) for the bench plumbing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod counters;
pub mod driver;
pub mod learner;
pub mod remote;
pub mod snapshot;
pub mod wire;

pub use config::{Mode, RuntimeConfig};
pub use counters::RuntimeReport;
pub use driver::{train, train_cancellable, train_with_transport, RuntimeOutcome};
pub use learner::{CollectParams, Learner};
pub use remote::{run_actor, run_learner_server, LearnerServer};
pub use snapshot::{PolicySlot, PolicySnapshot, SlotInfo};
pub use wire::{ActorCtrl, ExperienceBatch, LearnerHello, SyncReply};
