//! Versioned policy snapshots and the shared broadcast slot.

use dosco_nn::mlp::Mlp;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable, versioned copy of the learner's networks. Published by
/// the learner after every update; actors pick the latest up at batch
/// boundaries and collect whole rollouts under one snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicySnapshot {
    /// Monotonically increasing version: the number of learner updates
    /// applied before this snapshot was taken (0 = initial parameters).
    pub version: u64,
    /// The actor network at this version.
    pub actor: Mlp,
    /// The critic network at this version.
    pub critic: Mlp,
}

/// The single-slot broadcast channel for snapshots: `publish` replaces the
/// slot's `Arc`, `latest` clones it. Reads never block publishes beyond
/// the swap itself, and old snapshots stay alive only while an actor still
/// collects under them.
///
/// The slot is public API: besides the training runtime's actors, the
/// `dosco_serve` fabric subscribes its inference shards here, polling
/// [`PolicySlot::version`] at epoch boundaries and hot-swapping to
/// [`PolicySlot::latest`] when it moved — the hand-off point between the
/// training plane and the serving plane.
#[derive(Debug)]
pub struct PolicySlot {
    latest: Mutex<Arc<PolicySnapshot>>,
    version: AtomicU64,
    closed: AtomicBool,
}

impl PolicySlot {
    /// Creates a slot holding `initial` as the current snapshot.
    pub fn new(initial: PolicySnapshot) -> Self {
        PolicySlot {
            version: AtomicU64::new(initial.version),
            latest: Mutex::new(Arc::new(initial)),
            closed: AtomicBool::new(false),
        }
    }

    /// Replaces the slot content with a newer snapshot.
    pub fn publish(&self, snapshot: Arc<PolicySnapshot>) {
        let version = snapshot.version;
        *self.latest.lock().expect("policy slot poisoned") = snapshot;
        self.version.store(version, Ordering::Release);
    }

    /// The most recently published snapshot.
    pub fn latest(&self) -> Arc<PolicySnapshot> {
        Arc::clone(&self.latest.lock().expect("policy slot poisoned"))
    }

    /// The version of the most recently published snapshot (cheap read —
    /// one atomic load; subscribers poll this before paying for
    /// [`PolicySlot::latest`]).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Introspects the slot for operational surfaces (the `dosco_ctl`
    /// `GET /snapshot` endpoint): the published version, parameter counts
    /// of the snapshot's networks, and whether the runtime is shutting
    /// down — without cloning the networks themselves.
    pub fn info(&self) -> SlotInfo {
        let snap = self.latest();
        SlotInfo {
            version: snap.version,
            actor_params: snap.actor.num_params(),
            critic_params: snap.critic.num_params(),
            closed: self.is_closed(),
        }
    }

    /// Marks the runtime as shutting down; actors exit at their next batch
    /// boundary.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`PolicySlot::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// A cheap description of the slot's current snapshot
/// ([`PolicySlot::info`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotInfo {
    /// Version of the currently published snapshot.
    pub version: u64,
    /// Parameter count of the snapshot's actor network.
    pub actor_params: usize,
    /// Parameter count of the snapshot's critic network.
    pub critic_params: usize,
    /// Whether [`PolicySlot::close`] was called.
    pub closed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_nn::mlp::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snap(version: u64, seed: u64) -> PolicySnapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        PolicySnapshot {
            version,
            actor: Mlp::new(&[2, 3, 2], Activation::Tanh, &mut rng),
            critic: Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng),
        }
    }

    #[test]
    fn publish_replaces_latest_and_version() {
        let slot = PolicySlot::new(snap(0, 1));
        assert_eq!(slot.version(), 0);
        let first = slot.latest();
        slot.publish(Arc::new(snap(1, 2)));
        assert_eq!(slot.version(), 1);
        let second = slot.latest();
        assert_eq!(second.version, 1);
        // The older snapshot stays valid for in-flight collections.
        assert_eq!(first.version, 0);
        assert_ne!(first.actor, second.actor);
    }

    #[test]
    fn info_tracks_version_params_and_closed() {
        let slot = PolicySlot::new(snap(0, 1));
        let info = slot.info();
        assert_eq!(info.version, 0);
        // [2,3,2] actor: 2*3+3 + 3*2+2 = 17; [2,3,1] critic: 9 + 4 = 13.
        assert_eq!(info.actor_params, 17);
        assert_eq!(info.critic_params, 13);
        assert!(!info.closed);
        slot.publish(Arc::new(snap(4, 2)));
        slot.close();
        let info = slot.info();
        assert_eq!(info.version, 4);
        assert!(info.closed);
    }

    #[test]
    fn close_is_sticky() {
        let slot = PolicySlot::new(snap(0, 3));
        assert!(!slot.is_closed());
        slot.close();
        assert!(slot.is_closed());
        // Publishing after close still works (drain paths read it).
        slot.publish(Arc::new(snap(1, 4)));
        assert!(slot.is_closed());
        assert_eq!(slot.latest().version, 1);
    }
}
