//! Runtime configuration: execution mode, actor count, channel capacity,
//! minibatch aggregation, and the policy-staleness bound.

use serde::{Deserialize, Serialize};

/// Execution mode of the actor–learner runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Lockstep: one actor alternates with the learner, circulating the
    /// agent's RNG with each batch — bit-identical to the serial
    /// `RolloutCollector` training loop.
    Sync,
    /// Overlapped collection and learning: actors stream batches while the
    /// learner updates, with staleness bounded by
    /// [`RuntimeConfig::max_staleness`].
    Async,
}

impl Mode {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Async => "async",
        }
    }
}

/// Configuration of the actor–learner runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Execution mode.
    pub mode: Mode,
    /// Rollout-actor threads (async mode; sync always runs one actor).
    /// Clamped to the number of environments at launch.
    pub n_actors: usize,
    /// Bounded experience-channel capacity — the backpressure knob: actors
    /// block in `send` once this many batches are in flight.
    pub channel_capacity: usize,
    /// Actor batches the learner aggregates per update (async mode; sync
    /// mode requires 1).
    pub minibatch_batches: usize,
    /// Maximum policy staleness: an upper bound on how many snapshot
    /// versions the learner may have published after the version a
    /// consumed batch was collected under. Enforced by the actors' clock
    /// gate and asserted by the learner at consumption; must be at least
    /// [`RuntimeConfig::min_staleness_bound`] in async mode.
    pub max_staleness: u64,
    /// Base seed for the per-actor RNG streams (async mode; sync mode
    /// circulates the agent's own RNG instead).
    pub actor_seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            mode: Mode::Async,
            n_actors: 2,
            channel_capacity: 4,
            minibatch_batches: 1,
            max_staleness: 32,
            actor_seed: 0x5EED,
        }
    }
}

impl RuntimeConfig {
    /// A sync-mode (lockstep, bit-identical) configuration.
    pub fn sync() -> Self {
        RuntimeConfig {
            mode: Mode::Sync,
            n_actors: 1,
            ..RuntimeConfig::default()
        }
    }

    /// An async-mode configuration with `n_actors` actors and the smallest
    /// staleness bound this shape can guarantee.
    pub fn async_with_actors(n_actors: usize) -> Self {
        let mut cfg = RuntimeConfig {
            mode: Mode::Async,
            n_actors,
            ..RuntimeConfig::default()
        };
        cfg.max_staleness = cfg.min_staleness_bound();
        cfg
    }

    /// The guaranteed staleness ceiling when actors may run `skew` clock
    /// rounds apart (see [`RuntimeConfig::round_skew`]).
    ///
    /// Derivation sketch: a batch consumed by the learner was collected
    /// under the snapshot current when its actor passed the clock gate. By
    /// the gate invariant no actor is then more than `skew + 1` completed
    /// rounds ahead, so at most `N·(skew + 2)` further batches can already
    /// be collected or collectable before this batch's round completes,
    /// plus up to `channel_capacity` batches queued ahead of it. Each
    /// `minibatch_batches` consumed batches advance the version by one.
    /// The factor 2 and the trailing +1 are deliberate slack so the bound
    /// is provable without tight interleaving analysis; the learner
    /// asserts the *actual* staleness against `max_staleness` on every
    /// batch it consumes.
    pub fn guaranteed_staleness(&self, skew: u64) -> u64 {
        let n = self.n_actors.max(1) as u64;
        let c = self.channel_capacity.max(1) as u64;
        let m = self.minibatch_batches.max(1) as u64;
        (2 * n * (skew + 2) + 2 * c).div_ceil(m) + 1
    }

    /// The smallest `max_staleness` this configuration shape can enforce
    /// (its guaranteed bound at zero clock skew).
    pub fn min_staleness_bound(&self) -> u64 {
        self.guaranteed_staleness(0)
    }

    /// The largest clock skew (in collection rounds) the actors' gate may
    /// allow while still guaranteeing `max_staleness`: actors block before
    /// collecting round `k` until every live actor has completed round
    /// `k − skew`.
    pub fn round_skew(&self) -> u64 {
        let mut skew = 0;
        while skew < 1 << 20 && self.guaranteed_staleness(skew + 1) <= self.max_staleness {
            skew += 1;
        }
        skew
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be at least 1".into());
        }
        if self.minibatch_batches == 0 {
            return Err("minibatch_batches must be at least 1".into());
        }
        match self.mode {
            Mode::Sync => {
                if self.minibatch_batches != 1 {
                    return Err(
                        "sync mode is lockstep over single batches: minibatch_batches must be 1"
                            .into(),
                    );
                }
            }
            Mode::Async => {
                if self.n_actors == 0 {
                    return Err("async mode needs at least one actor".into());
                }
                let floor = self.min_staleness_bound();
                if self.max_staleness < floor {
                    return Err(format!(
                        "max_staleness {} below the enforceable floor {floor} for \
                         {} actors / capacity {} / minibatch {}",
                        self.max_staleness,
                        self.n_actors,
                        self.channel_capacity,
                        self.minibatch_batches
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RuntimeConfig::default().validate().unwrap();
        RuntimeConfig::sync().validate().unwrap();
        RuntimeConfig::async_with_actors(4).validate().unwrap();
    }

    #[test]
    fn rejects_zero_capacity_and_minibatch() {
        let cfg = RuntimeConfig {
            channel_capacity: 0,
            ..RuntimeConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = RuntimeConfig {
            minibatch_batches: 0,
            ..RuntimeConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn sync_requires_single_batch_minibatches() {
        let mut cfg = RuntimeConfig::sync();
        cfg.minibatch_batches = 2;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("lockstep"), "{err}");
    }

    #[test]
    fn async_rejects_unenforceable_staleness() {
        let mut cfg = RuntimeConfig::async_with_actors(2);
        cfg.max_staleness = 1;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("floor"), "{err}");
    }

    /// A larger allowed staleness buys the actors a larger clock skew, and
    /// the skew the gate uses always keeps the guarantee.
    #[test]
    fn round_skew_respects_the_bound_and_grows() {
        let tight = RuntimeConfig::async_with_actors(2);
        assert_eq!(tight.round_skew(), 0);
        let mut loose = tight;
        loose.max_staleness = 4 * tight.max_staleness;
        loose.validate().unwrap();
        assert!(loose.round_skew() > 0);
        assert!(loose.guaranteed_staleness(loose.round_skew()) <= loose.max_staleness);
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Sync.name(), "sync");
        assert_eq!(Mode::Async.name(), "async");
    }
}
