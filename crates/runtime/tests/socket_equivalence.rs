//! Loopback-socket equivalence: the pinned guarantee of the `dosco_net`
//! tentpole. A sync-mode training run whose channels are real TCP
//! connections — framed, checksummed, serialized through the binary codec
//! — produces *bit-identical* results to the in-process run: same
//! `TrainStats`, same weights, and the same RNG stream afterwards. The
//! multi-process deployment (learner server + connecting actor, two
//! independent transports over loopback TCP) is held to the same standard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dosco_net::{NetConfig, SocketLoopback};
use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::env::{Env, StepResult};
use dosco_rl::ppo::{Ppo, PpoConfig};
use dosco_runtime::{
    train, train_cancellable, train_with_transport, LearnerServer, Mode, RuntimeConfig,
};

/// Deterministic ring-walk env (same dynamics as the runtime integration
/// tests): any divergence in the policy/RNG stream shows up in rewards
/// immediately.
struct Ring {
    n: usize,
    pos: usize,
    steps: usize,
}

impl Ring {
    fn new(n: usize, start: usize) -> Self {
        Ring {
            n,
            pos: start % n,
            steps: 0,
        }
    }

    fn obs(&self) -> Vec<f32> {
        vec![
            (self.pos as f32 / self.n as f32).sin(),
            (self.pos as f32 / self.n as f32).cos(),
        ]
    }
}

impl Env for Ring {
    fn obs_dim(&self) -> usize {
        2
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f32> {
        self.pos = 1;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: usize) -> StepResult {
        self.steps += 1;
        self.pos = if action == 1 {
            (self.pos + 1) % self.n
        } else {
            (self.pos + self.n - 1) % self.n
        };
        let done = self.pos == 0 || self.steps >= 4 * self.n;
        let reward = if self.pos == 0 { 1.0 } else { -0.05 };
        let obs = if done { self.reset() } else { self.obs() };
        StepResult { obs, reward, done }
    }
}

fn ring_envs(n_envs: usize) -> Vec<Box<dyn Env>> {
    (0..n_envs)
        .map(|i| Box::new(Ring::new(6, 1 + i)) as Box<dyn Env>)
        .collect()
}

fn a2c_config() -> A2cConfig {
    A2cConfig {
        n_steps: 5,
        hidden: [8, 8],
        lr: 0.01,
        lr_decay: true,
        normalize_advantages: true,
        ..A2cConfig::default()
    }
}

/// Sync mode over loopback TCP is bit-identical to the in-process
/// transport: every batch crosses the wire through the frame + codec path
/// (floats as raw bits, the RNG as xoshiro state) and nothing diverges —
/// not even the RNG stream, proven by a further serial training tail.
#[test]
fn sync_over_loopback_socket_is_bit_identical_to_in_process() {
    let total = 300;
    let cfg = a2c_config();

    let mut in_proc = A2c::new(2, 2, cfg, 7);
    let mut in_proc_envs = ring_envs(3);
    let baseline = train(&mut in_proc, &mut in_proc_envs, total, &RuntimeConfig::sync());

    let mut socketed = A2c::new(2, 2, cfg, 7);
    let mut socket_envs = ring_envs(3);
    let outcome = train_with_transport(
        &mut socketed,
        &mut socket_envs,
        total,
        &RuntimeConfig::sync(),
        &SocketLoopback,
    );

    assert_eq!(outcome.stats, baseline.stats, "stats diverged over TCP");
    assert_eq!(
        socketed.actor().flat_params(),
        in_proc.actor().flat_params(),
        "actor weights diverged over TCP"
    );
    assert_eq!(
        socketed.critic().flat_params(),
        in_proc.critic().flat_params(),
        "critic weights diverged over TCP"
    );
    assert_eq!(outcome.report.mode, "sync");
    assert_eq!(
        outcome.report.batches_produced,
        outcome.report.batches_consumed + outcome.report.batches_in_flight,
        "batch conservation violated over TCP"
    );

    // The RNG stream came back through the wire exactly where the
    // in-process run left it.
    let tail_in_proc = in_proc.train(&mut in_proc_envs, 60);
    let tail_socketed = socketed.train(&mut socket_envs, 60);
    assert_eq!(tail_socketed, tail_in_proc, "RNG stream diverged over TCP");
}

/// The same equivalence holds for PPO's multi-epoch update (different
/// learner arithmetic exercising the same wire path).
#[test]
fn sync_ppo_over_loopback_socket_is_bit_identical() {
    let total = 240;
    let cfg = PpoConfig {
        n_steps: 6,
        hidden: [8, 8],
        epochs: 2,
        ..PpoConfig::default()
    };

    let mut in_proc = Ppo::new(2, 2, cfg, 5);
    let baseline = train(
        &mut in_proc,
        &mut ring_envs(2),
        total,
        &RuntimeConfig::sync(),
    );

    let mut socketed = Ppo::new(2, 2, cfg, 5);
    let outcome = train_with_transport(
        &mut socketed,
        &mut ring_envs(2),
        total,
        &RuntimeConfig::sync(),
        &SocketLoopback,
    );

    assert_eq!(outcome.stats, baseline.stats);
    assert_eq!(socketed.actor().flat_params(), in_proc.actor().flat_params());
    assert_eq!(
        socketed.critic().flat_params(),
        in_proc.critic().flat_params()
    );
}

/// The full multi-process deployment path — a learner server accepting a
/// TCP connection and a separately-constructed actor dialing in, speaking
/// `LearnerHello`/`ExperienceBatch`/`ActorCtrl` frames — reproduces the
/// in-process sync run bit for bit (weights, stats, and RNG tail).
#[test]
fn remote_learner_and_actor_over_tcp_match_in_process_sync() {
    let total = 300;
    let cfg = a2c_config();

    let mut in_proc = A2c::new(2, 2, cfg, 7);
    let mut in_proc_envs = ring_envs(3);
    let baseline = train(&mut in_proc, &mut in_proc_envs, total, &RuntimeConfig::sync());

    let server = LearnerServer::bind("127.0.0.1:0").expect("bind learner");
    let addr = server.local_addr();

    let learner_thread = std::thread::spawn(move || {
        let mut agent = A2c::new(2, 2, cfg, 7);
        let outcome = server
            .run(&mut agent, total, &RuntimeConfig::sync(), None)
            .expect("learner server run");
        (agent, outcome)
    });

    // The "actor process": same code path a real second process runs, here
    // on a thread so the test can join both ends.
    let mut actor_envs = ring_envs(3);
    let net = NetConfig::default();
    let sent = dosco_runtime::run_actor(&mut actor_envs, &addr, &net).expect("actor run");
    assert!(sent > 0, "actor shipped no batches");

    let (remote_agent, outcome) = learner_thread.join().expect("learner thread");
    assert_eq!(outcome.stats, baseline.stats, "remote stats diverged");
    assert_eq!(
        remote_agent.actor().flat_params(),
        in_proc.actor().flat_params(),
        "remote actor weights diverged"
    );
    assert_eq!(
        remote_agent.critic().flat_params(),
        in_proc.critic().flat_params(),
        "remote critic weights diverged"
    );

    // RNG equivalence across the process boundary: the learner got the
    // stream back (it travels inside every batch), so a serial tail stays
    // identical. The training envs live in the actor "process" and are
    // gone, so the tail runs on identical fresh envs for both agents (the
    // baseline replayed through a fresh in-process run).
    let mut remote_agent = remote_agent;
    let tail_baseline = {
        let mut fresh = A2c::new(2, 2, cfg, 7);
        let mut fresh_envs = ring_envs(3);
        let _ = train(&mut fresh, &mut fresh_envs, total, &RuntimeConfig::sync());
        fresh.train(&mut ring_envs(2), 60)
    };
    let tail_remote = remote_agent.train(&mut ring_envs(2), 60);
    assert_eq!(tail_remote, tail_baseline, "RNG diverged across processes");
}

/// Async mode over the socket transport completes the horizon and keeps
/// its invariants. (Async interleaving is timing-dependent by design, and
/// socket queues buffer beyond the nominal channel capacity — so the
/// staleness budget here has headroom, and only structural properties are
/// asserted; bit-identity is sync mode's contract.)
#[test]
fn async_over_loopback_socket_completes_with_invariants() {
    let total = 400;
    let mut agent = A2c::new(2, 2, a2c_config(), 3);
    let mut envs = ring_envs(4);
    let config = RuntimeConfig {
        mode: Mode::Async,
        n_actors: 2,
        channel_capacity: 2,
        minibatch_batches: 2,
        // Generous: a short run publishes few versions, so observed
        // staleness stays far below this even with kernel buffering.
        max_staleness: 512,
        actor_seed: 99,
    };
    config.validate().unwrap();
    let outcome = train_with_transport(&mut agent, &mut envs, total, &config, &SocketLoopback);

    assert!(outcome.stats.total_steps >= total);
    let r = &outcome.report;
    assert_eq!(r.mode, "async");
    assert!(r.max_staleness <= config.max_staleness);
    assert_eq!(
        r.batches_produced,
        r.batches_consumed + r.batches_in_flight,
        "batch conservation violated: {r:?}"
    );
}

/// A remote async deployment (two actor processes' worth of connections)
/// also completes and respects the learner-side staleness assertion.
#[test]
fn remote_async_two_actors_complete() {
    let total = 400;
    let config = RuntimeConfig {
        mode: Mode::Async,
        n_actors: 2,
        channel_capacity: 2,
        minibatch_batches: 1,
        max_staleness: 512,
        actor_seed: 42,
    };
    config.validate().unwrap();

    let server = LearnerServer::bind("127.0.0.1:0").expect("bind learner");
    let addr = server.local_addr();
    let cfg = a2c_config();
    let learner_thread = std::thread::spawn(move || {
        let mut agent = A2c::new(2, 2, cfg, 3);
        server
            .run(&mut agent, total, &config, None)
            .expect("learner server run")
    });
    let actors: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut envs = ring_envs(2 + i);
                dosco_runtime::run_actor(&mut envs, &addr, &NetConfig::default())
                    .expect("actor run")
            })
        })
        .collect();

    let outcome = learner_thread.join().expect("learner thread");
    for a in actors {
        assert!(a.join().expect("actor thread") > 0);
    }
    assert!(outcome.stats.total_steps >= total);
    assert_eq!(outcome.report.mode, "async");
    assert_eq!(outcome.report.n_actors, 2);
}

/// Cancellation stops a run early and still restores the agent RNG (the
/// shutdown drain recovers it from wherever it is in flight).
#[test]
fn cancelled_training_shuts_down_cleanly_and_restores_rng() {
    let cancel = Arc::new(AtomicBool::new(false));
    let mut agent = A2c::new(2, 2, a2c_config(), 17);
    let mut envs = ring_envs(2);
    cancel.store(true, Ordering::Relaxed); // cancel before the first update
    let outcome = train_cancellable(&mut agent, &mut envs, 1_000_000, &RuntimeConfig::sync(), &cancel);
    assert_eq!(outcome.stats.total_steps, 0, "cancel preempted all updates");
    // The agent survived with a usable RNG: further training works.
    let tail = agent.train(&mut ring_envs(2), 40);
    assert!(tail.total_steps >= 40);
}
