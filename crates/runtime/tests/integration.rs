//! End-to-end tests of the actor–learner runtime: sync-mode bit-identity
//! with the serial training loops, async-mode staleness/counter
//! guarantees, and panic propagation out of actor threads.

use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::acktr::{Acktr, AcktrConfig};
use dosco_rl::env::{Env, StepResult};
use dosco_rl::ppo::{Ppo, PpoConfig};
use dosco_runtime::{train, Mode, RuntimeConfig};

/// A deterministic ring walk: position 0..n-1, action 0 steps back, 1
/// steps forward (wrapping); reward +1 on reaching 0, −0.05 otherwise;
/// episodes end on wrap or after `4n` steps. Fully deterministic given
/// the action sequence, so any policy-stream divergence shows up in the
/// collected rewards immediately.
struct Ring {
    n: usize,
    pos: usize,
    steps: usize,
}

impl Ring {
    fn new(n: usize, start: usize) -> Self {
        Ring {
            n,
            pos: start % n,
            steps: 0,
        }
    }

    fn obs(&self) -> Vec<f32> {
        vec![
            (self.pos as f32 / self.n as f32).sin(),
            (self.pos as f32 / self.n as f32).cos(),
        ]
    }
}

impl Env for Ring {
    fn obs_dim(&self) -> usize {
        2
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f32> {
        self.pos = 1;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 2, "ring has two actions");
        self.steps += 1;
        self.pos = if action == 1 {
            (self.pos + 1) % self.n
        } else {
            (self.pos + self.n - 1) % self.n
        };
        let done = self.pos == 0 || self.steps >= 4 * self.n;
        let reward = if self.pos == 0 { 1.0 } else { -0.05 };
        let obs = if done { self.reset() } else { self.obs() };
        StepResult { obs, reward, done }
    }
}

/// An env that panics after a fixed number of steps — exercises the
/// runtime's panic path from inside an actor thread.
struct PanicEnv {
    inner: Ring,
    fuse: usize,
}

impl Env for PanicEnv {
    fn obs_dim(&self) -> usize {
        self.inner.obs_dim()
    }

    fn num_actions(&self) -> usize {
        self.inner.num_actions()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.inner.reset()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(self.fuse > 0, "env fuse blew");
        self.fuse -= 1;
        self.inner.step(action)
    }
}

fn ring_envs(n_envs: usize) -> Vec<Box<dyn Env>> {
    (0..n_envs)
        .map(|i| Box::new(Ring::new(6, 1 + i)) as Box<dyn Env>)
        .collect()
}

fn a2c_config() -> A2cConfig {
    A2cConfig {
        n_steps: 5,
        hidden: [8, 8],
        lr: 0.01,
        lr_decay: true,
        normalize_advantages: true,
        ..A2cConfig::default()
    }
}

/// Sync mode reproduces the serial A2C loop bit for bit — weights, stats,
/// and the RNG stream (proven by training a further serial chunk on both
/// agents afterwards and comparing again).
#[test]
fn sync_mode_matches_serial_a2c_bit_for_bit() {
    let total = 300;
    let cfg = a2c_config();

    let mut serial = A2c::new(2, 2, cfg, 7);
    let mut serial_envs = ring_envs(3);
    let serial_stats = serial.train(&mut serial_envs, total);

    let mut synced = A2c::new(2, 2, cfg, 7);
    let mut sync_envs = ring_envs(3);
    let outcome = train(&mut synced, &mut sync_envs, total, &RuntimeConfig::sync());

    assert_eq!(outcome.stats, serial_stats, "training statistics diverged");
    assert_eq!(
        synced.actor().flat_params(),
        serial.actor().flat_params(),
        "actor weights diverged"
    );
    assert_eq!(
        synced.critic().flat_params(),
        serial.critic().flat_params(),
        "critic weights diverged"
    );
    assert_eq!(outcome.report.mode, "sync");
    assert_eq!(outcome.report.n_actors, 1);
    assert_eq!(outcome.report.max_staleness, 0, "sync mode is never stale");
    assert_eq!(
        outcome.report.batches_produced,
        outcome.report.batches_consumed + outcome.report.batches_in_flight,
        "batch conservation violated"
    );

    // The runtime returned the RNG stream exactly where the serial loop
    // left it: further serial training stays identical.
    let tail_serial = serial.train(&mut serial_envs, 60);
    let tail_synced = synced.train(&mut sync_envs, 60);
    assert_eq!(tail_synced, tail_serial, "RNG stream diverged after run");
    assert_eq!(synced.actor().flat_params(), serial.actor().flat_params());
}

/// The same bit-identity holds for ACKTR, whose update itself consumes the
/// circulated RNG (Fisher-factor sampling) and whose default config decays
/// the learning rate — covering the runtime's schedule replay.
#[test]
fn sync_mode_matches_serial_acktr_bit_for_bit() {
    let total = 200;
    let cfg = AcktrConfig {
        n_steps: 5,
        hidden: [8, 8],
        inverse_period: 2,
        ..AcktrConfig::default()
    };
    assert!(cfg.lr_decay, "test must cover the lr schedule replay");

    let mut serial = Acktr::new(2, 2, cfg, 11);
    let mut serial_envs = ring_envs(2);
    let serial_stats = serial.train(&mut serial_envs, total);

    let mut synced = Acktr::new(2, 2, cfg, 11);
    let mut sync_envs = ring_envs(2);
    let outcome = train(&mut synced, &mut sync_envs, total, &RuntimeConfig::sync());

    assert_eq!(outcome.stats, serial_stats, "training statistics diverged");
    assert_eq!(synced.actor().flat_params(), serial.actor().flat_params());
    assert_eq!(synced.critic().flat_params(), serial.critic().flat_params());

    let tail_serial = serial.train(&mut serial_envs, 40);
    let tail_synced = synced.train(&mut sync_envs, 40);
    assert_eq!(tail_synced, tail_serial, "RNG stream diverged after run");
}

/// And for PPO (multi-epoch update, no internal lr schedule).
#[test]
fn sync_mode_matches_serial_ppo_bit_for_bit() {
    let total = 240;
    let cfg = PpoConfig {
        n_steps: 6,
        hidden: [8, 8],
        epochs: 2,
        ..PpoConfig::default()
    };

    let mut serial = Ppo::new(2, 2, cfg, 5);
    let mut serial_envs = ring_envs(2);
    let serial_stats = serial.train(&mut serial_envs, total);

    let mut synced = Ppo::new(2, 2, cfg, 5);
    let mut sync_envs = ring_envs(2);
    let outcome = train(&mut synced, &mut sync_envs, total, &RuntimeConfig::sync());

    assert_eq!(outcome.stats, serial_stats, "training statistics diverged");
    assert_eq!(synced.actor().flat_params(), serial.actor().flat_params());
    assert_eq!(synced.critic().flat_params(), serial.critic().flat_params());
}

/// Async mode: overlapped actors finish the requested horizon, observed
/// staleness stays within the configured bound, the counters obey the
/// conservation invariant, and every spawned thread joined cleanly (the
/// call returning at all proves the join; counters prove the drain).
#[test]
fn async_mode_bounds_staleness_and_conserves_batches() {
    let total = 600;
    let mut agent = A2c::new(2, 2, a2c_config(), 3);
    let mut envs = ring_envs(4);
    let config = RuntimeConfig {
        mode: Mode::Async,
        n_actors: 2,
        channel_capacity: 2,
        minibatch_batches: 2,
        max_staleness: 64,
        actor_seed: 99,
    };
    config.validate().unwrap();
    let outcome = train(&mut agent, &mut envs, total, &config);

    assert!(outcome.stats.total_steps >= total);
    let r = &outcome.report;
    assert_eq!(r.mode, "async");
    assert_eq!(r.n_actors, 2);
    assert!(
        r.max_staleness <= config.max_staleness,
        "staleness {} exceeded bound {}",
        r.max_staleness,
        config.max_staleness
    );
    assert!(r.mean_staleness <= r.max_staleness as f64);
    assert_eq!(
        r.batches_produced,
        r.batches_consumed + r.batches_in_flight,
        "batch conservation violated: {r:?}"
    );
    assert_eq!(
        r.snapshots_published as usize,
        outcome.stats.mean_rewards.len(),
        "one snapshot per update"
    );
    assert!(
        r.batches_consumed >= (outcome.stats.mean_rewards.len() as u64),
        "each update consumed at least one batch"
    );
}

/// The actor count is clamped to the number of environments, and the
/// requested horizon is still reached with more actors than envs asked
/// for. (Async runs are intentionally timing-dependent — the actor reads
/// whichever snapshot is latest at each batch boundary — so only
/// structural properties are asserted here; bit-identity lives in the
/// sync tests.)
#[test]
fn async_clamps_actor_count_to_envs() {
    let mut agent = A2c::new(2, 2, a2c_config(), 21);
    let mut envs = ring_envs(3);
    let config = RuntimeConfig::async_with_actors(8);
    let outcome = train(&mut agent, &mut envs, 200, &config);
    assert_eq!(outcome.report.n_actors, 3, "one actor per env at most");
    assert!(outcome.stats.total_steps >= 200);
}

/// A panic inside an actor thread (here: an env blowing a fuse mid-
/// collection) shuts the runtime down and is re-raised on the caller.
#[test]
#[should_panic(expected = "env fuse blew")]
fn actor_panics_propagate_to_the_caller() {
    let mut agent = A2c::new(2, 2, a2c_config(), 13);
    let mut envs: Vec<Box<dyn Env>> = vec![
        Box::new(Ring::new(6, 1)),
        Box::new(PanicEnv {
            inner: Ring::new(6, 2),
            fuse: 35,
        }),
    ];
    let config = RuntimeConfig {
        n_actors: 2,
        ..RuntimeConfig::default()
    };
    let _ = train(&mut agent, &mut envs, 100_000, &config);
}

/// A panic in sync mode (single lockstep actor) also propagates and does
/// not deadlock the learner.
#[test]
#[should_panic(expected = "env fuse blew")]
fn sync_actor_panics_propagate_to_the_caller() {
    let mut agent = A2c::new(2, 2, a2c_config(), 13);
    let mut envs: Vec<Box<dyn Env>> = vec![Box::new(PanicEnv {
        inner: Ring::new(6, 1),
        fuse: 12,
    })];
    let _ = train(&mut agent, &mut envs, 100_000, &RuntimeConfig::sync());
}

/// Invalid configurations are rejected before any thread spawns.
#[test]
#[should_panic(expected = "invalid runtime configuration")]
fn invalid_config_is_rejected_up_front() {
    let mut agent = A2c::new(2, 2, a2c_config(), 1);
    let mut envs = ring_envs(1);
    let config = RuntimeConfig {
        channel_capacity: 0,
        ..RuntimeConfig::default()
    };
    let _ = train(&mut agent, &mut envs, 10, &config);
}
