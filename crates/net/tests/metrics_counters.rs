//! Satellite contract: socket traffic shows up in the `dosco_obs`
//! registry — frame and byte counters on both directions — and the
//! deterministic JSON export (`GET /metrics` serves exactly this string)
//! carries them under their pinned names.

use dosco_net::{SocketLoopback, Transport};
use dosco_obs::{registry, CounterKind, ObsReport};

#[test]
fn socket_traffic_is_counted_and_exported_deterministically() {
    let sent_before = registry::counter_value(CounterKind::NetFramesSent);
    let recv_before = registry::counter_value(CounterKind::NetFramesReceived);
    let bytes_tx_before = registry::counter_value(CounterKind::NetBytesSent);
    let bytes_rx_before = registry::counter_value(CounterKind::NetBytesReceived);

    let (tx, rx) = Transport::<Vec<u64>>::channel(&SocketLoopback, 4);
    for i in 0..10u64 {
        tx.send(vec![i, i * i]).expect("send over loopback");
    }
    for i in 0..10u64 {
        assert_eq!(rx.recv().expect("recv over loopback"), vec![i, i * i]);
    }
    drop(tx);
    drop(rx);

    let frames_sent = registry::counter_value(CounterKind::NetFramesSent) - sent_before;
    let frames_recv = registry::counter_value(CounterKind::NetFramesReceived) - recv_before;
    assert!(frames_sent >= 10, "sent frames counted: {frames_sent}");
    assert!(frames_recv >= 10, "received frames counted: {frames_recv}");
    assert!(
        registry::counter_value(CounterKind::NetBytesSent) > bytes_tx_before,
        "sent bytes counted"
    );
    assert!(
        registry::counter_value(CounterKind::NetBytesReceived) > bytes_rx_before,
        "received bytes counted"
    );

    // The deterministic export carries the net counters under their
    // pinned names, and (with no concurrent traffic in this process) two
    // exports are byte-identical.
    let a = dosco_obs::report_json();
    let b = dosco_obs::report_json();
    assert_eq!(a, b, "metrics export must be byte-deterministic");
    for name in [
        "net_frames_sent",
        "net_frames_received",
        "net_bytes_sent",
        "net_bytes_received",
        "net_socket_stalls",
    ] {
        assert!(a.contains(&format!("\"{name}\"")), "{name} missing: {a}");
    }
    let report: ObsReport = serde_json::from_str(&a).expect("export parses");
    let frames = report
        .counters
        .iter()
        .find(|c| c.name == "net_frames_sent")
        .expect("net_frames_sent present");
    assert!(frames.value >= 10);
}
