//! Property tests for the wire format (satellite: frame-codec hardening).
//!
//! - encode→decode is *bitwise* round-trip for arbitrary value trees
//!   (compared on re-encoded bytes, so NaN floats — where `PartialEq`
//!   cannot — still count as equal when their bits survive);
//! - any single corrupted byte in a frame yields a named `FrameError`,
//!   never a panic or a silently wrong payload;
//! - any truncation point yields `Eof` (empty) or `Truncated` (mid-frame).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;

use dosco_net::codec::{decode_value, encode_value};
use dosco_net::frame::{decode_frame, encode_frame, FrameError, HEADER_LEN};

/// Generates an arbitrary value tree, including non-finite floats, signed
/// zero, empty strings/containers, and non-ASCII text.
fn gen_tree(rng: &mut StdRng, depth: usize) -> Value {
    let pick = if depth == 0 {
        rng.gen_range(0..7) // leaves only at max depth
    } else {
        rng.gen_range(0..9)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2) == 1),
        2 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
        3 => Value::UInt(rng.gen_range(0..u64::MAX)),
        // Arbitrary bit patterns: subnormals, infinities, NaN payloads.
        4 => Value::Float(f64::from_bits(rng.gen_range(0..u64::MAX))),
        5 => Value::Str(gen_text(rng)),
        6 => Value::Str(String::new()),
        7 => {
            let n = rng.gen_range(0..4);
            Value::Array((0..n).map(|_| gen_tree(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4);
            Value::Object(
                (0..n)
                    .map(|i| (format!("k{i}_{}", gen_text(rng)), gen_tree(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn gen_text(rng: &mut StdRng) -> String {
    let alphabet = ['a', 'Z', '0', ' ', 'é', '界', '\n', '"', '\\'];
    let n = rng.gen_range(0..6);
    (0..n)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn tree(max_depth: usize) -> impl Strategy<Value = Value> {
    (0u64..u64::MAX).prop_map(move |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen_tree(&mut rng, max_depth)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode→re-encode reproduces the exact payload bytes: the
    /// wire representation is canonical and nothing (incl. NaN bits) is
    /// lost in transit.
    #[test]
    fn codec_round_trip_is_bitwise(v in tree(4)) {
        let mut encoded = Vec::new();
        encode_value(&v, &mut encoded);
        let decoded = decode_value(&encoded).expect("well-formed payload decodes");
        let mut re_encoded = Vec::new();
        encode_value(&decoded, &mut re_encoded);
        prop_assert_eq!(&encoded, &re_encoded, "re-encode diverged");
    }

    /// Full frame (header + payload) round-trips and consumes exactly its
    /// own bytes.
    #[test]
    fn frame_round_trip(v in tree(3)) {
        let mut payload = Vec::new();
        encode_value(&v, &mut payload);
        let frame = encode_frame(&payload);
        let (back, used) = decode_frame(&frame).expect("frame decodes");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(back, payload);
    }

    /// Flipping any single byte of a frame produces a named error — the
    /// checksum (or header validation) catches it; nothing panics and no
    /// corrupted payload is ever returned as Ok.
    #[test]
    fn corrupt_byte_is_always_detected(v in tree(3), pos_seed in 0u64..u64::MAX, flip in 1u8..=255) {
        let mut payload = Vec::new();
        encode_value(&v, &mut payload);
        let mut frame = encode_frame(&payload);
        let pos = (pos_seed % frame.len() as u64) as usize;
        frame[pos] ^= flip;
        match decode_frame(&frame) {
            Err(
                FrameError::BadMagic(_)
                | FrameError::TooLarge(_)
                | FrameError::ChecksumMismatch { .. }
                | FrameError::Truncated,
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
            Ok(_) => prop_assert!(false, "corrupted frame decoded as Ok"),
        }
    }

    /// Every truncation point fails cleanly: empty input is `Eof`, a
    /// partial frame is `Truncated`.
    #[test]
    fn truncation_is_always_detected(v in tree(3), cut_seed in 0u64..u64::MAX) {
        let mut payload = Vec::new();
        encode_value(&v, &mut payload);
        let frame = encode_frame(&payload);
        let cut = (cut_seed % frame.len() as u64) as usize; // strictly short
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Eof) => prop_assert_eq!(cut, 0, "Eof only at a frame boundary"),
            Err(FrameError::Truncated) => prop_assert!(cut > 0),
            Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
            Ok(_) => prop_assert!(false, "short frame decoded as Ok"),
        }
    }

    /// Arbitrary garbage bytes never panic the decoder (they may decode as
    /// a valid frame only by forging the full header + checksum, which the
    /// generator cannot do by chance).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..96)) {
        let _ = decode_frame(&bytes);
        let _ = decode_value(&bytes);
    }
}

#[test]
fn header_is_sixteen_bytes() {
    // The wire format is frozen: changing HEADER_LEN breaks cross-version
    // interop and must be a deliberate protocol bump.
    assert_eq!(HEADER_LEN, 16);
    assert_eq!(encode_frame(&[]).len(), 16);
}
