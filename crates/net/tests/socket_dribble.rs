//! Dribbling-peer regression tests: a peer that writes one byte at a
//! time, with pauses long enough to fire the receiver's read timeout
//! mid-frame, must never desync the framed stream.
//!
//! Before the PR-9 fix, `read_frame`'s payload used a raw `read_exact`:
//! the first `SO_RCVTIMEO` expiry inside a payload failed the read,
//! faulted the channel, and every subsequent frame was lost.

use dosco_net::frame::{encode_frame, read_frame, FrameError};
use dosco_net::receiver_on;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

/// Connects a loopback pair, returning (client, server) streams.
fn loopback_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    (client, server)
}

/// Writes `bytes` one byte at a time, pausing `pause` between bytes so
/// the reader's timeout fires many times inside every frame.
fn dribble(stream: &mut TcpStream, bytes: &[u8], pause: Duration) {
    for &b in bytes {
        stream.write_all(&[b]).expect("write byte");
        stream.flush().expect("flush byte");
        std::thread::sleep(pause);
    }
}

/// Raw `read_frame` on a stream with a read timeout much shorter than
/// the peer's inter-byte pause: both frames decode, then a clean EOF.
#[test]
fn read_frame_survives_a_dribbling_peer_across_timeouts() {
    let (mut client, mut server) = loopback_pair();
    // Timeout shorter than the peer's inter-byte pause: every byte gap
    // fires at least one timeout, most of them mid-frame.
    server
        .set_read_timeout(Some(Duration::from_millis(1)))
        .expect("set timeout");

    let writer = std::thread::spawn(move || {
        let mut wire = encode_frame(b"first frame");
        wire.extend_from_slice(&encode_frame(b"second frame"));
        dribble(&mut client, &wire, Duration::from_millis(3));
        // A long mid-stream silence at a frame boundary, then close.
        std::thread::sleep(Duration::from_millis(30));
        let _ = client.shutdown(Shutdown::Write);
    });

    // The first header byte may race the timeout: retry idle ticks at
    // the boundary (`Io`), which consume nothing.
    let read_resuming = |server: &mut TcpStream| loop {
        match read_frame(server) {
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            other => return other,
        }
    };
    assert_eq!(read_resuming(&mut server).expect("first"), b"first frame");
    assert_eq!(read_resuming(&mut server).expect("second"), b"second frame");
    assert!(matches!(read_resuming(&mut server), Err(FrameError::Eof)));
    writer.join().expect("writer");
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Msg {
    seq: u64,
    body: Vec<f32>,
}

/// The full `receiver_on` channel over a stream with a short read
/// timeout: messages from a dribbling peer arrive intact and in order,
/// and the channel reports no fault — timeouts inside a frame resume
/// instead of killing the reader thread.
#[test]
fn receiver_channel_survives_a_dribbling_peer() {
    let (mut client, server) = loopback_pair();
    server
        .set_read_timeout(Some(Duration::from_millis(1)))
        .expect("set timeout");
    let rx = receiver_on::<Msg>(server, 8);

    let sent: Vec<Msg> = (0..3)
        .map(|i| Msg {
            seq: i,
            body: vec![i as f32 + 0.5],
        })
        .collect();
    let wire: Vec<u8> = sent
        .iter()
        .flat_map(|m| encode_frame(&dosco_net::encode_msg(m)))
        .collect();
    let writer = std::thread::spawn(move || {
        dribble(&mut client, &wire, Duration::from_millis(3));
        let _ = client.shutdown(Shutdown::Write);
    });

    for expected in &sent {
        assert_eq!(&rx.recv().expect("recv"), expected);
    }
    assert!(rx.recv().is_err(), "clean EOF disconnects after draining");
    assert!(rx.fault().is_none(), "timeouts are not faults: {:?}", rx.fault());
    writer.join().expect("writer");
}
