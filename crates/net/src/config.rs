//! Validated `DOSCO_NET_*` environment configuration and connection
//! establishment (bounded exponential-backoff retry + connect timeout).
//!
//! | variable               | meaning                                  | default |
//! |------------------------|------------------------------------------|---------|
//! | `DOSCO_NET_ROLE`       | `actor` / `learner` / `shard` / `frontend` | unset |
//! | `DOSCO_NET_ADDR`       | `host:port` the role connects or binds to  | unset |
//! | `DOSCO_NET_RETRIES`    | extra connect attempts after the first     | `5`   |
//! | `DOSCO_NET_TIMEOUT_MS` | per-attempt connect timeout (ms), ≥ 1      | `2000`|
//! | `DOSCO_NET_CAPACITY`   | in-flight messages per channel, ≥ 1        | `8`   |
//!
//! Parsing goes through [`dosco_obs::env::parse_lookup`]: unset or blank
//! means default, malformed raises an [`EnvParseError`] naming the
//! variable, the offending value, and what was expected.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::str::FromStr;
use std::time::Duration;

use dosco_obs::env::{parse_lookup, EnvParseError};

/// Which process of a distributed deployment this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Collects rollouts and ships experience batches to the learner.
    Actor,
    /// Consumes batches, updates the policy, broadcasts snapshots.
    Learner,
    /// Answers batched decision requests for its node partition.
    Shard,
    /// Drives serve episodes and routes decisions to shards.
    Frontend,
}

impl Role {
    /// Stable lowercase name (the accepted `DOSCO_NET_ROLE` spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Role::Actor => "actor",
            Role::Learner => "learner",
            Role::Shard => "shard",
            Role::Frontend => "frontend",
        }
    }
}

impl FromStr for Role {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "actor" => Ok(Role::Actor),
            "learner" => Ok(Role::Learner),
            "shard" => Ok(Role::Shard),
            "frontend" => Ok(Role::Frontend),
            other => Err(format!("unknown role {other:?}")),
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Validated network configuration for one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// This process's role, if `DOSCO_NET_ROLE` is set.
    pub role: Option<Role>,
    /// Peer (or bind) address, if `DOSCO_NET_ADDR` is set.
    pub addr: Option<String>,
    /// Extra connect attempts after the first (total = retries + 1).
    pub retries: u32,
    /// Per-attempt connect timeout.
    pub timeout: Duration,
    /// Bounded in-flight message capacity per channel.
    pub capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            role: None,
            addr: None,
            retries: 5,
            timeout: Duration::from_millis(2000),
            capacity: 8,
        }
    }
}

impl NetConfig {
    /// Reads configuration from the process environment.
    ///
    /// # Errors
    ///
    /// [`EnvParseError`] naming the first malformed variable.
    pub fn from_env() -> Result<Self, EnvParseError> {
        Self::from_lookup(&|var| std::env::var(var).ok())
    }

    /// Reads configuration through an injectable lookup (testable without
    /// touching the process environment).
    ///
    /// # Errors
    ///
    /// [`EnvParseError`] naming the first malformed variable.
    pub fn from_lookup(get: &dyn Fn(&str) -> Option<String>) -> Result<Self, EnvParseError> {
        let defaults = NetConfig::default();
        let role = parse_lookup::<Role>(
            get,
            "DOSCO_NET_ROLE",
            "one of actor|learner|shard|frontend",
            |_| true,
        )?;
        let addr = match get("DOSCO_NET_ADDR") {
            None => None,
            Some(raw) if raw.trim().is_empty() => None,
            Some(raw) => Some(raw.trim().to_owned()),
        };
        let retries = parse_lookup::<u32>(get, "DOSCO_NET_RETRIES", "a u32 retry count", |_| true)?
            .unwrap_or(defaults.retries);
        let timeout_ms = parse_lookup::<u64>(
            get,
            "DOSCO_NET_TIMEOUT_MS",
            "a positive timeout in milliseconds",
            |&v| v >= 1,
        )?
        .map_or(defaults.timeout, Duration::from_millis);
        let capacity = parse_lookup::<usize>(
            get,
            "DOSCO_NET_CAPACITY",
            "a positive channel capacity",
            |&v| v >= 1,
        )?
        .unwrap_or(defaults.capacity);
        Ok(NetConfig {
            role,
            addr,
            retries,
            timeout: timeout_ms,
            capacity,
        })
    }

    /// The configured address, or an error naming the variable if unset
    /// (roles that must dial or bind call this).
    ///
    /// # Errors
    ///
    /// [`NetError::MissingAddr`] when `DOSCO_NET_ADDR` was not provided.
    pub fn require_addr(&self) -> Result<&str, NetError> {
        self.addr.as_deref().ok_or(NetError::MissingAddr)
    }
}

/// Connection-establishment failures.
#[derive(Debug)]
pub enum NetError {
    /// `DOSCO_NET_ADDR` is required for this role but unset.
    MissingAddr,
    /// Every connect attempt failed.
    Connect {
        /// The address dialed.
        addr: String,
        /// Attempts made (retries + 1).
        attempts: u32,
        /// The error from the final attempt.
        last: io::Error,
    },
    /// The address did not resolve to any socket address.
    Resolve {
        /// The address as given.
        addr: String,
        /// The resolution error.
        source: io::Error,
    },
    /// The peer connected but violated the wire protocol (bad handshake
    /// frame, shape mismatch, premature close).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MissingAddr => {
                write!(f, "DOSCO_NET_ADDR is required for this role but unset")
            }
            NetError::Connect {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "failed to connect to {addr} after {attempts} attempt(s): {last}"
            ),
            NetError::Resolve { addr, source } => {
                write!(f, "address {addr:?} did not resolve: {source}")
            }
            NetError::Protocol(what) => write!(f, "wire protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Backoff before retry `k` (0-based): 20 ms · 2^k, capped at 500 ms.
#[must_use]
pub fn backoff_delay(attempt: u32) -> Duration {
    let ms = 20u64.saturating_mul(1u64 << attempt.min(10));
    Duration::from_millis(ms.min(500))
}

/// Dials `addr` with a per-attempt connect timeout and bounded exponential
/// backoff between attempts (`retries` extra attempts after the first).
///
/// # Errors
///
/// [`NetError::Resolve`] if the address yields no socket addresses,
/// [`NetError::Connect`] naming the address and total attempts otherwise.
pub fn connect_with_retry(
    addr: &str,
    retries: u32,
    timeout: Duration,
) -> Result<TcpStream, NetError> {
    use std::net::ToSocketAddrs;
    let attempts = retries.saturating_add(1);
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(attempt - 1));
        }
        // Re-resolve each attempt: the peer may come up (or move) between
        // retries.
        let resolved = match addr.to_socket_addrs() {
            Ok(it) => it.collect::<Vec<_>>(),
            Err(e) => {
                return Err(NetError::Resolve {
                    addr: addr.to_owned(),
                    source: e,
                })
            }
        };
        if resolved.is_empty() {
            return Err(NetError::Resolve {
                addr: addr.to_owned(),
                source: io::Error::new(io::ErrorKind::NotFound, "no socket addresses"),
            });
        }
        for sock in resolved {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
    }
    Err(NetError::Connect {
        addr: addr.to_owned(),
        attempts,
        last: last.unwrap_or_else(|| io::Error::other("no attempt ran")),
    })
}

/// Dials using the retry/timeout policy carried in `cfg`, against
/// `cfg.addr`.
///
/// # Errors
///
/// [`NetError::MissingAddr`] if no address is configured, else as
/// [`connect_with_retry`].
pub fn connect_from(cfg: &NetConfig) -> Result<TcpStream, NetError> {
    let addr = cfg.require_addr()?.to_owned();
    connect_with_retry(&addr, cfg.retries, cfg.timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        move |k: &str| map.get(k).cloned()
    }

    #[test]
    fn defaults_when_unset() {
        let cfg = NetConfig::from_lookup(&lookup(&[])).expect("defaults");
        assert_eq!(cfg, NetConfig::default());
        assert!(matches!(cfg.require_addr(), Err(NetError::MissingAddr)));
    }

    #[test]
    fn full_parse() {
        let cfg = NetConfig::from_lookup(&lookup(&[
            ("DOSCO_NET_ROLE", "learner"),
            ("DOSCO_NET_ADDR", "127.0.0.1:7171"),
            ("DOSCO_NET_RETRIES", "2"),
            ("DOSCO_NET_TIMEOUT_MS", "250"),
            ("DOSCO_NET_CAPACITY", "16"),
        ]))
        .expect("parse");
        assert_eq!(cfg.role, Some(Role::Learner));
        assert_eq!(cfg.addr.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(cfg.retries, 2);
        assert_eq!(cfg.timeout, Duration::from_millis(250));
        assert_eq!(cfg.capacity, 16);
    }

    #[test]
    fn malformed_values_name_the_variable() {
        let err = NetConfig::from_lookup(&lookup(&[("DOSCO_NET_ROLE", "manager")]))
            .expect_err("bad role");
        assert!(err.to_string().contains("DOSCO_NET_ROLE"), "{err}");

        let err = NetConfig::from_lookup(&lookup(&[("DOSCO_NET_TIMEOUT_MS", "0")]))
            .expect_err("zero timeout");
        assert!(err.to_string().contains("DOSCO_NET_TIMEOUT_MS"), "{err}");

        let err = NetConfig::from_lookup(&lookup(&[("DOSCO_NET_CAPACITY", "zero")]))
            .expect_err("non-numeric");
        assert!(err.to_string().contains("DOSCO_NET_CAPACITY"), "{err}");
    }

    #[test]
    fn role_names_round_trip() {
        for role in [Role::Actor, Role::Learner, Role::Shard, Role::Frontend] {
            assert_eq!(role.name().parse::<Role>().expect("round trip"), role);
        }
        assert!("".parse::<Role>().is_err());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        assert_eq!(backoff_delay(0), Duration::from_millis(20));
        assert_eq!(backoff_delay(1), Duration::from_millis(40));
        assert_eq!(backoff_delay(2), Duration::from_millis(80));
        assert_eq!(backoff_delay(10), Duration::from_millis(500));
        assert_eq!(backoff_delay(u32::MAX), Duration::from_millis(500));
    }

    #[test]
    fn connect_to_never_listening_address_fails_after_bounded_attempts() {
        // Bind an ephemeral port, then drop the listener: the port is now
        // known-dead and connecting to it is a fast ECONNREFUSED.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let start = std::time::Instant::now();
        let err = connect_with_retry(&dead_addr, 2, Duration::from_millis(200))
            .expect_err("must not connect");
        match &err {
            NetError::Connect { addr, attempts, .. } => {
                assert_eq!(addr, &dead_addr);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected Connect error, got {other}"),
        }
        // 2 backoffs (20 + 40 ms) plus fast refusals: well under 5 s proves
        // the retry loop is bounded, not spinning.
        assert!(start.elapsed() < Duration::from_secs(5), "retry unbounded?");
        assert!(err.to_string().contains(&dead_addr));
    }
}
