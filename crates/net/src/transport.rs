//! The [`Transport`] abstraction: typed, bounded channels whose two ends
//! may live in one process (crossbeam) or on either side of a socket.
//!
//! The contract every implementation must honor is the crossbeam contract
//! the runtime and serve planes were built on:
//!
//! - `send` blocks while `capacity` messages are in flight (backpressure)
//!   and fails only when the receiving side is gone;
//! - `try_send` never blocks and distinguishes `Full` from `Disconnected`;
//! - `recv` drains every in-flight message before it reports disconnect;
//! - dropping all senders is the clean shutdown signal for the receiver.
//!
//! Error types are re-used from the vendored crossbeam so generic driver
//! code matches on exactly the arms it matched on before.

use crossbeam::channel::{self, RecvError, SendError, TryRecvError, TrySendError};

/// Sending half of a transport channel. Cloneable via [`Tx::clone_box`]
/// (multi-producer, mirroring `crossbeam::channel::Sender`).
pub trait Tx<T>: Send {
    /// Blocks until the message is accepted or the receiver is gone.
    ///
    /// # Errors
    ///
    /// Returns the message if the receiving side disconnected.
    fn send(&self, msg: T) -> Result<(), SendError<T>>;

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// `Full` if at capacity, `Disconnected` if the receiver is gone.
    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>>;

    /// Clones this sender (another producer onto the same channel).
    fn clone_box(&self) -> BoxTx<T>;
}

/// Receiving half of a transport channel (single-consumer).
pub trait Rx<T>: Send {
    /// Blocks until a message arrives or every sender disconnected.
    ///
    /// # Errors
    ///
    /// Fails only once the channel is drained *and* sender-less.
    fn recv(&self) -> Result<T, RecvError>;

    /// Dequeues without blocking.
    ///
    /// # Errors
    ///
    /// `Empty` if nothing is queued, `Disconnected` once drained and
    /// sender-less.
    fn try_recv(&self) -> Result<T, TryRecvError>;

    /// The transport fault that terminated this channel, if any: `None` for
    /// a healthy channel or a clean disconnect, a description for e.g. a
    /// corrupt frame on a socket transport. In-process channels never fault.
    fn fault(&self) -> Option<String> {
        None
    }
}

/// Boxed sender half.
pub type BoxTx<T> = Box<dyn Tx<T>>;
/// Boxed receiver half.
pub type BoxRx<T> = Box<dyn Rx<T>>;

/// A factory for typed channels of one message type `T`.
pub trait Transport<T> {
    /// Opens a channel with room for `capacity` in-flight messages.
    fn channel(&self, capacity: usize) -> (BoxTx<T>, BoxRx<T>);
}

// ---------------------------------------------------------------------------
// InProcess: the existing crossbeam channels behind the trait.
// ---------------------------------------------------------------------------

/// The in-process transport: channels are exactly the bounded crossbeam
/// channels the planes used before this crate existed, so every code path
/// routed through it is bit-identical to the pre-transport wiring.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

struct ChanTx<T>(channel::Sender<T>);
struct ChanRx<T>(channel::Receiver<T>);

impl<T: Send + 'static> Tx<T> for ChanTx<T> {
    fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg)
    }
    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        self.0.try_send(msg)
    }
    fn clone_box(&self) -> BoxTx<T> {
        Box::new(ChanTx(self.0.clone()))
    }
}

impl<T: Send + 'static> Rx<T> for ChanRx<T> {
    fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }
    fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }
}

impl<T: Send + 'static> Transport<T> for InProcess {
    fn channel(&self, capacity: usize) -> (BoxTx<T>, BoxRx<T>) {
        let (tx, rx) = channel::bounded(capacity);
        (Box::new(ChanTx(tx)), Box::new(ChanRx(rx)))
    }
}

/// Wraps an existing crossbeam sender as a [`BoxTx`] (for plumbing a
/// transport end into code that already owns the raw channel).
pub fn tx_from_channel<T: Send + 'static>(tx: channel::Sender<T>) -> BoxTx<T> {
    Box::new(ChanTx(tx))
}

/// Wraps an existing crossbeam receiver as a [`BoxRx`].
pub fn rx_from_channel<T: Send + 'static>(rx: channel::Receiver<T>) -> BoxRx<T> {
    Box::new(ChanRx(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_matches_crossbeam_contract() {
        let (tx, rx) = <InProcess as Transport<u32>>::channel(&InProcess, 2);
        tx.send(1).expect("send");
        tx.try_send(2).expect("try_send");
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().expect("recv"), 1);
        let tx2 = tx.clone_box();
        drop(tx);
        tx2.send(4).expect("clone still connected");
        drop(tx2);
        // Drain-then-disconnect: in-flight messages first, then the error.
        assert_eq!(rx.recv().expect("drain 2"), 2);
        assert_eq!(rx.recv().expect("drain 4"), 4);
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn dropping_receiver_fails_sends() {
        let (tx, rx) = <InProcess as Transport<u8>>::channel(&InProcess, 1);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert!(matches!(tx.try_send(8), Err(TrySendError::Disconnected(8))));
    }
}
