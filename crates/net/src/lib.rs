//! `dosco_net`: the pluggable transport layer under the actor–learner and
//! serve planes.
//!
//! The paper's coordination system is distributed by design; this crate is
//! what lets the runtime and serve dataflows span OS processes without the
//! algorithms changing (the SRL/MSRL lesson: abstract the transport under
//! the dataflow, not the dataflow itself). It provides:
//!
//! - [`transport`] — the [`Transport`]/[`Tx`]/[`Rx`] traits: typed bounded
//!   channels with crossbeam's exact backpressure, disconnect, and
//!   shutdown-drain semantics, plus the [`InProcess`] implementation that
//!   *is* the original crossbeam wiring (bit-identical by construction).
//! - [`socket`] — the same contract over TCP: a bounded queue + writer
//!   thread per sender, a reader thread + bounded queue per receiver, and
//!   the [`SocketLoopback`] transport that pairs them over `127.0.0.1` for
//!   equivalence testing.
//! - [`frame`] — the length-prefixed, FNV-1a-checksummed wire frame.
//! - [`codec`] — a bit-exact binary encoding of the vendored serde
//!   [`serde::Value`] tree (floats travel as raw IEEE-754 bits).
//! - [`config`] — validated `DOSCO_NET_*` environment configuration, plus
//!   [`connect_with_retry`] (bounded exponential backoff + connect
//!   timeout).
//!
//! Traffic is observable through the `net_*` counters and the
//! `net_encode`/`net_decode` span timers in `dosco_obs`.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod codec;
pub mod config;
pub mod frame;
pub mod socket;
pub mod transport;

pub use codec::{decode_msg, encode_msg, CodecError};
pub use config::{backoff_delay, connect_from, connect_with_retry, NetConfig, NetError, Role};
pub use frame::{read_frame, write_frame, FrameError};
pub use socket::{receiver_on, sender_on, SocketLoopback, Wire};
pub use transport::{rx_from_channel, tx_from_channel, BoxRx, BoxTx, InProcess, Rx, Transport, Tx};
