//! Socket-backed channels: the crossbeam contract over a TCP stream.
//!
//! Each direction of a connection is one typed channel:
//!
//! - [`sender_on`] wraps the write half. Senders enqueue into a bounded
//!   in-process queue; a dedicated writer thread drains it, encoding each
//!   message with [`crate::codec`] and framing it with [`crate::frame`].
//!   When the last sender clone drops, the writer drains what is queued,
//!   then shuts down the write half — the peer sees a clean EOF at a frame
//!   boundary, exactly like the last crossbeam `Sender` dropping.
//! - [`receiver_on`] wraps the read half. A reader thread decodes frames
//!   into a bounded queue; `recv` drains buffered messages before it
//!   reports disconnect, mirroring crossbeam's drain-then-error semantics.
//!
//! Backpressure is end-to-end: a slow receiver fills its bounded queue,
//! which parks the reader thread, which fills the kernel TCP window, which
//! parks the peer's writer thread, which fills the sender-side queue, at
//! which point `send` blocks (and `try_send` returns `Full`, counted as
//! `net_socket_stalls`).

use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use crossbeam::channel::{self, RecvError, SendError, TryRecvError, TrySendError};
use dosco_obs::registry::{count, CounterKind};
use serde::{Deserialize, Serialize};

use crate::codec::{decode_msg, encode_msg};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::transport::{BoxRx, BoxTx, Rx, Transport, Tx};

/// What a message type needs to travel over a socket transport.
pub trait Wire: Serialize + Deserialize + Send + 'static {}
impl<T: Serialize + Deserialize + Send + 'static> Wire for T {}

// ---------------------------------------------------------------------------
// Sender half.
// ---------------------------------------------------------------------------

struct TxShared {
    writer: Mutex<Option<JoinHandle<()>>>,
}

struct SocketTx<T> {
    /// `Some` until drop; dropping the last clone's sender disconnects the
    /// writer thread's receiver, which triggers drain + FIN.
    queue: Option<channel::Sender<T>>,
    shared: Arc<TxShared>,
}

impl<T: Wire> Tx<T> for SocketTx<T> {
    fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let q = self.queue.as_ref().expect("live sender");
        match q.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(m)) => Err(SendError(m)),
            Err(TrySendError::Full(m)) => {
                count(CounterKind::NetSocketStalls, 1);
                q.send(m)
            }
        }
    }

    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let q = self.queue.as_ref().expect("live sender");
        let res = q.try_send(msg);
        if matches!(res, Err(TrySendError::Full(_))) {
            count(CounterKind::NetSocketStalls, 1);
        }
        res
    }

    fn clone_box(&self) -> BoxTx<T> {
        Box::new(SocketTx {
            queue: self.queue.clone(),
            shared: Arc::clone(&self.shared),
        })
    }
}

impl<T> Drop for SocketTx<T> {
    fn drop(&mut self) {
        // Release our queue sender first: once the last clone does this, the
        // writer thread's `recv` drains the queue and then errors out.
        self.queue.take();
        // Join the writer only from the last clone (sole Arc holder), so the
        // frames for everything sent before drop are on the wire when drop
        // returns — matching the "drop sender, receiver still drains all
        // in-flight messages" crossbeam contract.
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            let handle = shared.writer.get_mut().expect("writer lock").take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

/// Wraps the write half of `stream` as a typed transport sender with room
/// for `capacity` in-flight messages.
///
/// # Panics
///
/// Panics if the writer thread cannot be spawned or `capacity == 0`.
pub fn sender_on<T: Wire>(stream: TcpStream, capacity: usize) -> BoxTx<T> {
    let _ = stream.set_nodelay(true);
    let (tx, rx) = channel::bounded::<T>(capacity);
    let writer = thread::Builder::new()
        .name("dosco-net-writer".into())
        .spawn(move || {
            let mut stream = stream;
            while let Ok(msg) = rx.recv() {
                let payload = encode_msg(&msg);
                if write_frame(&mut stream, &payload).is_err() {
                    // Peer is gone: exit, dropping `rx` so every queued and
                    // future `send` observes the disconnect.
                    return;
                }
            }
            // All senders dropped and the queue is drained: signal a clean
            // close so the peer's reader sees EOF at a frame boundary.
            let _ = stream.shutdown(Shutdown::Write);
        })
        .expect("spawn dosco-net-writer");
    Box::new(SocketTx {
        queue: Some(tx),
        shared: Arc::new(TxShared {
            writer: Mutex::new(Some(writer)),
        }),
    })
}

// ---------------------------------------------------------------------------
// Receiver half.
// ---------------------------------------------------------------------------

struct SocketRx<T> {
    queue: Option<channel::Receiver<T>>,
    /// Clone of the stream used solely to unblock the reader on drop.
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    /// First decode/transport error the reader hit, if any (a clean EOF is
    /// not an error).
    fault: Arc<Mutex<Option<String>>>,
}

impl<T: Wire> Rx<T> for SocketRx<T> {
    fn recv(&self) -> Result<T, RecvError> {
        self.queue.as_ref().expect("live receiver").recv()
    }

    fn try_recv(&self) -> Result<T, TryRecvError> {
        self.queue.as_ref().expect("live receiver").try_recv()
    }

    fn fault(&self) -> Option<String> {
        self.fault.lock().expect("fault lock").clone()
    }
}

impl<T> Drop for SocketRx<T> {
    fn drop(&mut self) {
        // Order matters: close our queue end (so a reader parked on a full
        // queue errors out), then shut the socket (so a reader parked in
        // `read` errors out), then join.
        self.queue.take();
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Wraps the read half of `stream` as a typed transport receiver buffering
/// up to `capacity` decoded messages.
///
/// A decode failure (corrupt frame, shape mismatch) terminates the stream
/// like a disconnect — after the buffered messages drain, `recv` errors —
/// rather than panicking; the fault description is available via
/// [`Rx::fault`].
///
/// # Panics
///
/// Panics if the reader thread cannot be spawned, the stream cannot be
/// cloned, or `capacity == 0`.
pub fn receiver_on<T: Wire>(stream: TcpStream, capacity: usize) -> BoxRx<T> {
    let _ = stream.set_nodelay(true);
    let (tx, rx) = channel::bounded::<T>(capacity);
    let fault: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let fault_in = Arc::clone(&fault);
    let shutdown_handle = stream.try_clone().expect("clone stream for shutdown");
    let reader = thread::Builder::new()
        .name("dosco-net-reader".into())
        .spawn(move || {
            let mut stream = stream;
            loop {
                let payload = match read_frame(&mut stream) {
                    Ok(p) => p,
                    Err(FrameError::Eof) => return,
                    // A read timeout at a frame boundary (the caller may
                    // have configured `SO_RCVTIMEO` on the stream) is an
                    // idle tick, not a fault: nothing was consumed, so
                    // waiting again cannot desync. Timeouts *inside* a
                    // frame never surface here — `read_frame` resumes
                    // them itself.
                    Err(FrameError::Io(e))
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        continue;
                    }
                    Err(e) => {
                        *fault_in.lock().expect("fault lock") = Some(e.to_string());
                        return;
                    }
                };
                let msg: T = match decode_msg(&payload) {
                    Ok(m) => m,
                    Err(e) => {
                        *fault_in.lock().expect("fault lock") = Some(e.to_string());
                        return;
                    }
                };
                // Blocking send is the backpressure: a full queue parks this
                // thread, which in turn parks the peer via the TCP window.
                if tx.send(msg).is_err() {
                    return;
                }
            }
        })
        .expect("spawn dosco-net-reader");
    Box::new(SocketRx {
        queue: Some(rx),
        stream: shutdown_handle,
        reader: Some(reader),
        fault,
    })
}

// ---------------------------------------------------------------------------
// Loopback transport: socket channels behind the Transport trait.
// ---------------------------------------------------------------------------

/// A [`Transport`] whose every channel is a real TCP connection over
/// loopback: bind an ephemeral listener, connect, accept, and wrap the two
/// streams with [`sender_on`] / [`receiver_on`].
///
/// This drives the *identical* generic code path a multi-host deployment
/// uses — same codec, framing, threads, and backpressure — which is what
/// the socket equivalence tests pin against the in-process transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketLoopback;

impl<T: Wire> Transport<T> for SocketLoopback {
    fn channel(&self, capacity: usize) -> (BoxTx<T>, BoxRx<T>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener addr");
        let accept = thread::Builder::new()
            .name("dosco-net-accept".into())
            .spawn(move || listener.accept().expect("accept loopback peer").0)
            .expect("spawn dosco-net-accept");
        let tx_stream = TcpStream::connect(addr).expect("connect loopback");
        let rx_stream = accept.join().expect("join accept thread");
        (sender_on(tx_stream, capacity), receiver_on(rx_stream, capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Msg {
        seq: u64,
        body: Vec<f32>,
    }

    fn loopback_channel(capacity: usize) -> (BoxTx<Msg>, BoxRx<Msg>) {
        <SocketLoopback as Transport<Msg>>::channel(&SocketLoopback, capacity)
    }

    #[test]
    fn messages_arrive_in_order_bitwise() {
        let (tx, rx) = loopback_channel(4);
        let msgs: Vec<Msg> = (0..32)
            .map(|i| Msg {
                seq: i,
                body: vec![i as f32 * 0.5, -1.0 / (i as f32 + 1.0)],
            })
            .collect();
        let sent = msgs.clone();
        let sender = thread::spawn(move || {
            for m in msgs {
                tx.send(m).expect("send");
            }
        });
        for expected in &sent {
            let got = rx.recv().expect("recv");
            assert_eq!(&got, expected);
        }
        sender.join().expect("sender thread");
    }

    #[test]
    fn drop_sender_drains_then_disconnects() {
        let (tx, rx) = loopback_channel(8);
        for i in 0..5 {
            tx.send(Msg {
                seq: i,
                body: vec![],
            })
            .expect("send");
        }
        drop(tx); // writer drains, FINs; reader forwards then closes
        for i in 0..5 {
            assert_eq!(rx.recv().expect("drain").seq, i);
        }
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn clone_keeps_channel_open_until_last_drop() {
        let (tx, rx) = loopback_channel(8);
        let tx2 = tx.clone_box();
        drop(tx);
        tx2.send(Msg {
            seq: 99,
            body: vec![1.0],
        })
        .expect("clone sends");
        drop(tx2);
        assert_eq!(rx.recv().expect("recv").seq, 99);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn dropping_receiver_does_not_hang_sender_side() {
        let (tx, rx) = loopback_channel(2);
        drop(rx);
        // The writer may only discover the closed peer on write; sends must
        // terminate (either Ok into the doomed queue or an error), never
        // hang forever.
        let mut saw_err = false;
        for i in 0..64 {
            if tx
                .send(Msg {
                    seq: i,
                    body: vec![0.0; 64],
                })
                .is_err()
            {
                saw_err = true;
                break;
            }
        }
        // On loopback the RST is prompt, but the exact send that observes it
        // is timing-dependent; the property under test is termination.
        let _ = saw_err;
    }

    #[test]
    fn nan_payload_survives_the_wire() {
        let (tx, rx) = loopback_channel(1);
        let nan = f32::from_bits(0x7fc0_1234);
        tx.send(Msg {
            seq: 0,
            body: vec![nan, -0.0],
        })
        .expect("send");
        let got = rx.recv().expect("recv");
        assert_eq!(got.body[0].to_bits(), nan.to_bits());
        assert_eq!(got.body[1].to_bits(), (-0.0f32).to_bits());
        drop(tx);
    }

    #[test]
    fn backpressure_try_send_reports_full() {
        let (tx, rx) = loopback_channel(1);
        // Fill sender queue + reader queue + TCP buffers until Full appears.
        let big = Msg {
            seq: 0,
            body: vec![1.0; 16384],
        };
        let mut full_seen = false;
        for _ in 0..512 {
            match tx.try_send(big.clone()) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    full_seen = true;
                    break;
                }
                Err(TrySendError::Disconnected(_)) => panic!("receiver alive"),
            }
        }
        assert!(full_seen, "bounded socket channel never reported Full");
        // Drain so the writer can finish and drop cleanly.
        drop(tx);
        while rx.recv().is_ok() {}
    }
}
