//! Binary codec for the vendored serde [`Value`] tree.
//!
//! JSON text would lose float precision (and NaN) on the wire; this codec
//! instead stores every number exactly — `f64` as its raw IEEE-754 bits —
//! so a `PolicySnapshot` or `Rollout` round-trips *bitwise*, which is what
//! the sync-mode bit-identity contract requires of a socket transport.
//!
//! One byte of tag per node:
//!
//! | tag | node                                          |
//! |-----|-----------------------------------------------|
//! | 0   | `Null`                                        |
//! | 1   | `Bool(false)`                                 |
//! | 2   | `Bool(true)`                                  |
//! | 3   | `Int` (i64 LE)                                |
//! | 4   | `UInt` (u64 LE)                               |
//! | 5   | `Float` (f64 bits LE, NaN preserved)          |
//! | 6   | `Str` (u32 LE length + UTF-8 bytes)           |
//! | 7   | `Array` (u32 LE count + elements)             |
//! | 8   | `Object` (u32 LE count + (key, value) pairs)  |
//!
//! Decoding is recursive with a hard depth cap so corrupt input yields
//! [`CodecError::TooDeep`] instead of a stack overflow.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Maximum nesting depth a decoded tree may have. The real wire messages
/// nest a handful of levels; 512 is far above any legitimate payload and
/// far below stack exhaustion.
pub const MAX_DEPTH: usize = 512;

/// Why a payload could not be decoded into a typed message.
#[derive(Debug)]
pub enum CodecError {
    /// The payload ended before the tree was complete.
    Truncated,
    /// An unknown node tag byte.
    BadTag(u8),
    /// A string node held invalid UTF-8.
    BadUtf8,
    /// The tree nests deeper than [`MAX_DEPTH`] (corrupt or hostile input).
    TooDeep,
    /// Bytes remained after the root node was fully decoded.
    TrailingBytes(usize),
    /// The tree decoded, but did not match the target type's shape.
    Shape(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload ended before the value tree was complete"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string node holds invalid utf-8"),
            CodecError::TooDeep => write!(f, "value tree nests deeper than {MAX_DEPTH}"),
            CodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after the root value")
            }
            CodecError::Shape(msg) => write!(f, "decoded tree does not match message shape: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a tree into `out` (appended; `out` is not cleared).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::Int(i) => {
            out.push(3);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(4);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(5);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(6);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(7);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(entries) => {
            out.push(8);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, val) in entries {
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Deserializes a tree from `bytes`, requiring every byte to be consumed.
///
/// # Errors
///
/// Any [`CodecError`] variant except [`CodecError::Shape`].
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut pos = 0usize;
    let v = decode_node(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - pos));
    }
    Ok(v)
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos.checked_add(n).ok_or(CodecError::Truncated)?;
    if end > bytes.len() {
        return Err(CodecError::Truncated);
    }
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let s = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
}

fn decode_node(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let tag = take(bytes, pos, 1)?[0];
    match tag {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(false)),
        2 => Ok(Value::Bool(true)),
        3 => {
            let s = take(bytes, pos, 8)?;
            Ok(Value::Int(i64::from_le_bytes(
                s.try_into().expect("8-byte slice"),
            )))
        }
        4 => {
            let s = take(bytes, pos, 8)?;
            Ok(Value::UInt(u64::from_le_bytes(
                s.try_into().expect("8-byte slice"),
            )))
        }
        5 => {
            let s = take(bytes, pos, 8)?;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                s.try_into().expect("8-byte slice"),
            ))))
        }
        6 => {
            let len = take_u32(bytes, pos)? as usize;
            let s = take(bytes, pos, len)?;
            let text = std::str::from_utf8(s).map_err(|_| CodecError::BadUtf8)?;
            Ok(Value::Str(text.to_owned()))
        }
        7 => {
            let n = take_u32(bytes, pos)? as usize;
            // Cap the pre-allocation by what the remaining bytes could hold
            // (1 byte per element minimum) so a hostile count cannot OOM.
            let mut items = Vec::with_capacity(n.min(bytes.len() - *pos));
            for _ in 0..n {
                items.push(decode_node(bytes, pos, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        8 => {
            let n = take_u32(bytes, pos)? as usize;
            let mut entries = Vec::with_capacity(n.min(bytes.len() - *pos));
            for _ in 0..n {
                let klen = take_u32(bytes, pos)? as usize;
                let ks = take(bytes, pos, klen)?;
                let key = std::str::from_utf8(ks)
                    .map_err(|_| CodecError::BadUtf8)?
                    .to_owned();
                entries.push((key, decode_node(bytes, pos, depth + 1)?));
            }
            Ok(Value::Object(entries))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Serializes a typed message to its wire payload (timed as a `NetEncode`
/// span when spans are enabled).
#[must_use]
pub fn encode_msg<T: Serialize>(msg: &T) -> Vec<u8> {
    let _span = dosco_obs::span(dosco_obs::SpanKind::NetEncode);
    let mut out = Vec::new();
    encode_value(&msg.to_value(), &mut out);
    out
}

/// Deserializes a typed message from its wire payload (timed as a
/// `NetDecode` span when spans are enabled).
///
/// # Errors
///
/// Any [`CodecError`]; shape mismatches from the typed layer surface as
/// [`CodecError::Shape`].
pub fn decode_msg<T: Deserialize>(payload: &[u8]) -> Result<T, CodecError> {
    let _span = dosco_obs::span(dosco_obs::SpanKind::NetDecode);
    let tree = decode_value(payload)?;
    T::from_value(&tree).map_err(|e| CodecError::Shape(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        decode_value(&buf).expect("decode")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("héllo".to_owned()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn float_bits_survive_exactly() {
        // NaN payloads and signed zero are preserved — a JSON text codec
        // cannot do either.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = Vec::new();
        encode_value(&Value::Float(nan), &mut buf);
        match decode_value(&buf).expect("decode") {
            Value::Float(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        match round_trip(&Value::Float(-0.0)) {
            Value::Float(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = Value::Object(vec![
            ("version".to_owned(), Value::UInt(7)),
            (
                "weights".to_owned(),
                // f32 weights travel widened to f64, the path every Mlp
                // parameter takes through the serde tree.
                Value::Array(vec![
                    Value::Float(1.5),
                    Value::Float(f64::from(-3.402_823_5e38_f32)),
                ]),
            ),
            ("tag".to_owned(), Value::Null),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn truncated_and_bad_tag_are_named() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(9), &mut buf);
        assert!(matches!(
            decode_value(&buf[..buf.len() - 1]),
            Err(CodecError::Truncated)
        ));
        assert!(matches!(decode_value(&[0xff]), Err(CodecError::BadTag(0xff))));
        assert!(matches!(decode_value(&[6, 2, 0, 0, 0, 0xc3]), Err(CodecError::Truncated)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_value(&Value::Bool(true), &mut buf);
        buf.push(0);
        assert!(matches!(
            decode_value(&buf),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_depth_errors_instead_of_overflowing() {
        // A chain of one-element arrays deeper than MAX_DEPTH.
        let depth = MAX_DEPTH + 8;
        let mut buf = Vec::new();
        for _ in 0..depth {
            buf.push(7);
            buf.extend_from_slice(&1u32.to_le_bytes());
        }
        buf.push(0); // innermost Null
        assert!(matches!(decode_value(&buf), Err(CodecError::TooDeep)));
    }

    #[test]
    fn hostile_count_does_not_preallocate() {
        // Array claims u32::MAX elements but carries none: must error, not OOM.
        let mut buf = vec![7];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_value(&buf), Err(CodecError::Truncated)));
    }

    #[test]
    fn typed_round_trip_through_derive() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Probe {
            id: u64,
            xs: Vec<f32>,
            label: String,
        }
        let probe = Probe {
            id: 17,
            xs: vec![0.25, -1.5e-8, 3.0],
            label: "shard".to_owned(),
        };
        let payload = encode_msg(&probe);
        let back: Probe = decode_msg(&payload).expect("decode");
        assert_eq!(back, probe);
    }

    #[test]
    fn shape_mismatch_is_named() {
        let payload = encode_msg(&42u64);
        let err = decode_msg::<String>(&payload).expect_err("shape mismatch");
        assert!(matches!(err, CodecError::Shape(_)));
    }
}
