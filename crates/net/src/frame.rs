//! Length-prefixed, checksummed binary frames.
//!
//! Every wire message travels as one frame:
//!
//! ```text
//! +------+-----------+---------------+-------------------+
//! | DNF1 | len: u32  | checksum: u64 | payload (len b)   |
//! +------+-----------+---------------+-------------------+
//!   4 B     LE           LE (FNV-1a of payload)
//! ```
//!
//! The 16-byte header is fixed; `len` bounds the payload and the checksum
//! is FNV-1a 64 over the payload bytes, so a flipped bit anywhere in the
//! body surfaces as [`FrameError::ChecksumMismatch`] instead of a garbled
//! decode downstream. A clean EOF *between* frames is [`FrameError::Eof`]
//! (the peer closed after draining — the transport's disconnect signal);
//! EOF *inside* a frame is [`FrameError::Truncated`].

use std::fmt;
use std::io::{self, Read, Write};

use dosco_obs::registry::{count, CounterKind};

/// Frame magic: "dosco net frame v1".
pub const MAGIC: [u8; 4] = *b"DNF1";

/// Fixed header size: magic + payload length + checksum.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a single payload (64 MiB). A million-step rollout is far
/// below this; anything larger is a corrupt or hostile length field.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// FNV-1a 64-bit hash (local copy of `dosco_core::fnv1a64`; duplicated so
/// the wire crate stays dependency-light and the wire format is pinned here).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a frame could not be read or verified.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary: the peer closed after
    /// writing its last complete frame. This is the normal disconnect
    /// signal, not corruption.
    Eof,
    /// The stream ended inside a header or payload.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The length field exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The payload hashed to a different value than the header claimed.
    ChecksumMismatch {
        /// Checksum carried in the frame header.
        expected: u64,
        /// Checksum computed over the received payload.
        actual: u64,
    },
    /// An I/O error other than EOF.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "clean end of stream at frame boundary"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::BadMagic(m) => {
                write!(f, "bad frame magic {m:02x?} (expected {MAGIC:02x?})")
            }
            FrameError::TooLarge(n) => {
                write!(f, "frame payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Encodes `payload` into a standalone frame byte vector (header + body).
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload {} exceeds cap {MAX_PAYLOAD}",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `bytes`, returning the payload and
/// the number of bytes consumed.
///
/// # Errors
///
/// Any [`FrameError`] variant except [`FrameError::Io`]; an empty input is
/// [`FrameError::Eof`].
pub fn decode_frame(bytes: &[u8]) -> Result<(Vec<u8>, usize), FrameError> {
    let mut cursor = io::Cursor::new(bytes);
    let payload = read_frame(&mut cursor)?;
    Ok((payload, cursor.position() as usize))
}

/// Writes one frame (header + payload) to `w` and flushes it, counting the
/// bytes and frame into the obs registry.
///
/// # Errors
///
/// [`FrameError::Io`] if the write or flush fails.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(payload);
    w.write_all(&frame).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)?;
    count(CounterKind::NetFramesSent, 1);
    count(CounterKind::NetBytesSent, frame.len() as u64);
    Ok(())
}

/// Reads one complete frame from `r`, verifying magic, length cap, and
/// checksum, and counting bytes/frames into the obs registry.
///
/// # Errors
///
/// [`FrameError::Eof`] on a clean close before any header byte; otherwise
/// the named corruption or I/O variant.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or_eof(r, &mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let expected = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; len as usize];
    read_exact_mid_frame(r, &mut payload)?;
    let actual = fnv1a64(&payload);
    if actual != expected {
        return Err(FrameError::ChecksumMismatch { expected, actual });
    }
    count(CounterKind::NetFramesReceived, 1);
    count(CounterKind::NetBytesReceived, (HEADER_LEN + payload.len()) as u64);
    Ok(payload)
}

/// A read-timeout error (`SO_RCVTIMEO` expiry): the stream is idle, not
/// broken. Portability note: Unix reports `WouldBlock`, Windows `TimedOut`.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF at a
/// frame boundary) from "some bytes then EOF" (truncation mid-frame).
///
/// Partial reads are the norm on TCP: a header (or payload, below) can
/// arrive one byte per segment, and on a stream with a read timeout the
/// timeout can fire *between* those bytes. Once any frame byte has been
/// consumed the only safe behaviors are to keep reading or to fail the
/// stream — returning a retryable error mid-frame would desync every
/// frame after it. So a timeout with `filled > 0` resumes, while a
/// timeout before the first header byte surfaces as [`FrameError::Io`]
/// with nothing consumed (an idle-but-healthy stream, safe to retry).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if filled > 0 && is_timeout(&e) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// `read_exact` for bytes that are *inside* a frame (the payload): EOF is
/// always [`FrameError::Truncated`], and interrupts/timeouts resume — the
/// header was already consumed, so bailing out here could never be
/// retried without desyncing the stream.
fn read_exact_mid_frame<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_reference_vectors() {
        // Reference vectors from the FNV spec; pins wire compatibility with
        // dosco_core::fnv1a64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn round_trip() {
        let payload = b"hello frames".to_vec();
        let bytes = encode_frame(&payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (decoded, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(decoded, payload);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(&[]);
        let (decoded, used) = decode_frame(&bytes).expect("decode");
        assert!(decoded.is_empty());
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn eof_at_boundary_vs_truncated() {
        assert!(matches!(decode_frame(&[]), Err(FrameError::Eof)));
        let bytes = encode_frame(b"abc");
        assert!(matches!(
            decode_frame(&bytes[..HEADER_LEN - 3]),
            Err(FrameError::Truncated)
        ));
        assert!(matches!(
            decode_frame(&bytes[..bytes.len() - 1]),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let mut bytes = encode_frame(b"payload under test");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_oversize_are_named() {
        let mut bytes = encode_frame(b"x");
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadMagic(_))));

        let mut oversize = encode_frame(b"x");
        oversize[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversize),
            Err(FrameError::TooLarge(_))
        ));
    }

    /// Delivers at most one byte per `read`, with scripted I/O errors
    /// interleaved — the worst-case behavior of a real TCP stream with a
    /// read timeout (`SO_RCVTIMEO`) under heavy segmentation.
    struct DribbleReader {
        steps: std::collections::VecDeque<Result<u8, io::ErrorKind>>,
    }

    impl DribbleReader {
        fn new(steps: impl IntoIterator<Item = Result<u8, io::ErrorKind>>) -> Self {
            DribbleReader {
                steps: steps.into_iter().collect(),
            }
        }
    }

    impl Read for DribbleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            assert!(!buf.is_empty());
            match self.steps.pop_front() {
                None => Ok(0),
                Some(Ok(b)) => {
                    buf[0] = b;
                    Ok(1)
                }
                Some(Err(kind)) => Err(kind.into()),
            }
        }
    }

    /// Regression: a frame arriving one byte per read, with a timeout or
    /// interrupt after every byte, must decode — not desync or error.
    #[test]
    fn frame_survives_one_byte_reads_with_interleaved_timeouts() {
        let bytes = encode_frame(b"dribbled payload");
        let mut steps = Vec::new();
        for (i, &b) in bytes.iter().enumerate() {
            steps.push(Ok(b));
            // After the first byte we are mid-frame: every flavor of
            // transient error must be absorbed. (None after the final
            // byte — that would be a boundary tick of the next frame.)
            if i + 1 < bytes.len() {
                steps.push(Err(match i % 3 {
                    0 => io::ErrorKind::Interrupted,
                    1 => io::ErrorKind::WouldBlock,
                    _ => io::ErrorKind::TimedOut,
                }));
            }
        }
        let mut r = DribbleReader::new(steps);
        assert_eq!(read_frame(&mut r).expect("decode"), b"dribbled payload");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    /// A timeout before the first header byte is an idle stream, not a
    /// fault: it surfaces as `Io` with nothing consumed, and the very
    /// next `read_frame` decodes the frame — no desync.
    #[test]
    fn timeout_at_frame_boundary_is_retryable() {
        let bytes = encode_frame(b"after the idle tick");
        let mut steps = vec![Err(io::ErrorKind::WouldBlock)];
        steps.extend(bytes.iter().map(|&b| Ok(b)));
        let mut r = DribbleReader::new(steps);
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected retryable Io, got {other:?}"),
        }
        assert_eq!(read_frame(&mut r).expect("retry decodes"), b"after the idle tick");
    }

    /// Regression: a timeout between payload bytes must resume the read
    /// (previously the payload used a raw `read_exact`, which failed and
    /// left the stream desynced mid-frame).
    #[test]
    fn timeout_mid_payload_resumes() {
        let bytes = encode_frame(b"split payload");
        let mut steps: Vec<Result<u8, io::ErrorKind>> =
            bytes.iter().map(|&b| Ok(b)).collect();
        // Stall right after the first payload byte.
        steps.insert(HEADER_LEN + 1, Err(io::ErrorKind::WouldBlock));
        steps.insert(HEADER_LEN + 2, Err(io::ErrorKind::TimedOut));
        let mut r = DribbleReader::new(steps);
        assert_eq!(read_frame(&mut r).expect("decode"), b"split payload");
    }

    /// EOF inside the payload is truncation, even through the resuming
    /// reader.
    #[test]
    fn eof_mid_payload_is_truncated() {
        let bytes = encode_frame(b"cut short");
        let steps: Vec<Result<u8, io::ErrorKind>> =
            bytes[..bytes.len() - 2].iter().map(|&b| Ok(b)).collect();
        let mut r = DribbleReader::new(steps);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn sequential_frames_decode_in_order() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").expect("write");
        write_frame(&mut stream, b"second").expect("write");
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).expect("first"), b"first");
        assert_eq!(read_frame(&mut cursor).expect("second"), b"second");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));
    }
}
