//! Trained coordination policies and their distributed deployment
//! (Fig. 4b).

use crate::observe::ObservationAdapter;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::Categorical;
use dosco_simnet::{Action, Coordinator, DecisionPoint, Simulation};
use dosco_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The per-node RNG stream seed: the deployment seed XORed with a
/// splitmix-style spread of the node id, so every node agent draws from
/// its own independent stream. Node agents seeded this way decide
/// identically no matter how their decisions interleave with other
/// nodes' — the determinism contract shared by [`DistributedAgents`] and
/// the `dosco_serve` shard workers.
#[must_use]
pub fn per_node_seed(seed: u64, node: usize) -> u64 {
    seed ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A trained coordination policy: the actor network plus the observation
/// contract it was trained with. This is the artifact that centralized
/// training produces and that gets copied to every node for distributed
/// inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinationPolicy {
    /// The actor network (observation → action logits).
    actor: Mlp,
    /// The network degree the observation adapter was padded to.
    degree: usize,
    /// Free-form provenance (scenario, algorithm, seed, score).
    pub metadata: PolicyMetadata,
}

/// Provenance recorded with a trained policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyMetadata {
    /// Human-readable scenario description.
    pub scenario: String,
    /// Training algorithm name.
    pub algorithm: String,
    /// Winning training seed.
    pub seed: u64,
    /// Selection score of the winning seed.
    pub score: f32,
    /// Environment transitions trained on.
    pub total_steps: usize,
}

impl CoordinationPolicy {
    /// Wraps a trained actor.
    ///
    /// # Panics
    ///
    /// Panics if the actor's input/output dimensions are inconsistent with
    /// `degree` (`4·Δ+4` inputs, `Δ+1` outputs).
    pub fn new(actor: Mlp, degree: usize, metadata: PolicyMetadata) -> Self {
        assert_eq!(
            actor.inputs(),
            4 * degree + 4,
            "actor inputs must equal 4·Δ+4"
        );
        assert_eq!(
            actor.outputs(),
            degree + 1,
            "actor outputs must equal Δ+1"
        );
        CoordinationPolicy {
            actor,
            degree,
            metadata,
        }
    }

    /// The actor network.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The padded network degree `Δ_G`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// An observation adapter matching this policy.
    pub fn adapter(&self) -> ObservationAdapter {
        ObservationAdapter::new(self.degree)
    }

    /// Greedy action for a raw observation vector.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` mismatches the policy's input dimension.
    pub fn act(&self, obs: &[f32]) -> usize {
        Categorical::new(&self.actor.forward(&Matrix::row_vector(obs))).argmax()[0]
    }

    /// Stochastic action: samples from the policy distribution. This is
    /// the default prediction mode of the stable-baselines agents the
    /// paper deployed; unlike the greedy argmax it cannot lock into
    /// deterministic forwarding loops.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` mismatches the policy's input dimension.
    pub fn act_sampled<R: rand::Rng + ?Sized>(&self, obs: &[f32], rng: &mut R) -> usize {
        Categorical::new(&self.actor.forward(&Matrix::row_vector(obs))).sample(rng)[0]
    }

    /// Serializes the policy to JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (effectively never for
    /// in-memory data).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes a policy from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed JSON or mismatched shapes.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Saves the policy to an integrity-checked artifact file: a one-line
    /// JSON header carrying the payload length and FNV-1a 64 checksum,
    /// then the policy JSON itself. [`CoordinationPolicy::load`] verifies
    /// both before parsing, so truncated or bit-flipped artifacts are
    /// detected instead of surfacing as confusing parse errors (or worse,
    /// parsing "successfully" into a different policy).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the filesystem; the message names the
    /// offending path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let json = self.to_json().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("serializing policy for {}: {e}", path.display()),
            )
        })?;
        let header = ArtifactHeader {
            format: ARTIFACT_FORMAT.to_string(),
            payload_len: json.len() as u64,
            fnv64: format!("{:016x}", fnv1a64(json.as_bytes())),
        };
        let header_json = serde_json::to_string(&header).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("serializing header for {}: {e}", path.display()),
            )
        })?;
        std::fs::write(path, format!("{header_json}\n{json}")).map_err(|e| {
            io::Error::new(e.kind(), format!("writing policy file {}: {e}", path.display()))
        })
    }

    /// Loads a policy from a file written by [`CoordinationPolicy::save`],
    /// verifying the header's payload length (truncation) and FNV-1a 64
    /// checksum (corruption) before parsing. Headerless files are parsed
    /// as legacy bare-JSON artifacts.
    ///
    /// # Errors
    ///
    /// Returns I/O errors or [`io::ErrorKind::InvalidData`] for
    /// truncated, corrupt, or malformed content; the message names the
    /// offending path and, for integrity failures, the expected vs.
    /// actual length or checksum.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let content = std::fs::read_to_string(path).map_err(|e| {
            io::Error::new(e.kind(), format!("reading policy file {}: {e}", path.display()))
        })?;
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let header = content
            .split_once('\n')
            .and_then(|(first, rest)| {
                serde_json::from_str::<ArtifactHeader>(first)
                    .ok()
                    .filter(|h| h.format == ARTIFACT_FORMAT)
                    .map(|h| (h, rest))
            });
        let payload = match &header {
            Some((h, payload)) => {
                if payload.len() as u64 != h.payload_len {
                    return Err(invalid(format!(
                        "policy file {} is truncated or padded: header expects {} payload \
                         bytes, found {}",
                        path.display(),
                        h.payload_len,
                        payload.len()
                    )));
                }
                let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
                if actual != h.fnv64 {
                    return Err(invalid(format!(
                        "policy file {} is corrupt: header expects fnv64 checksum {}, \
                         payload hashes to {}",
                        path.display(),
                        h.fnv64,
                        actual
                    )));
                }
                *payload
            }
            // No artifact header: a legacy bare-JSON policy file.
            None => content.as_str(),
        };
        Self::from_json(payload).map_err(|e| {
            invalid(format!("parsing policy file {}: {e}", path.display()))
        })
    }
}

/// Artifact format tag written in the header line of saved policies.
const ARTIFACT_FORMAT: &str = "dosco-policy-v1";

/// The integrity header [`CoordinationPolicy::save`] writes as the first
/// line of an artifact file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ArtifactHeader {
    /// Format tag ([`ARTIFACT_FORMAT`]).
    format: String,
    /// Byte length of the policy JSON payload after the header newline.
    payload_len: u64,
    /// FNV-1a 64 checksum of the payload bytes, as 16 lowercase hex digits.
    fnv64: String,
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty to detect the
/// truncation/bit-rot failure modes an artifact store cares about (this
/// is an integrity check, not a cryptographic signature).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fully distributed deployment: one agent per node, each holding its
/// own copy of the trained network (Fig. 4b) and deciding from local
/// observations only.
///
/// Functionally every copy is identical — the value of materializing the
/// copies is architectural fidelity and honest per-agent inference-latency
/// measurements (Fig. 9b).
#[derive(Debug, Clone)]
pub struct DistributedAgents {
    agents: Vec<CoordinationPolicy>,
    adapter: ObservationAdapter,
    /// Count of decisions taken per node (diagnostics).
    decisions: Vec<u64>,
    /// Per-node sampling RNG streams (seeded by [`per_node_seed`]);
    /// `None` = greedy argmax inference. One stream per node keeps each
    /// agent's decisions independent of how other nodes' decisions
    /// interleave — a shared stream would leak global ordering into
    /// supposedly local inference.
    samplers: Option<Vec<rand::rngs::StdRng>>,
}

impl DistributedAgents {
    /// Deploys a copy of `policy` at each of `num_nodes` nodes, deciding
    /// greedily (argmax).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn deploy(policy: &CoordinationPolicy, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        DistributedAgents {
            agents: vec![policy.clone(); num_nodes],
            adapter: policy.adapter(),
            decisions: vec![0; num_nodes],
            samplers: None,
        }
    }

    /// Like [`DistributedAgents::deploy`] but sampling actions from the
    /// policy distribution (stable-baselines' default prediction mode).
    /// Each node gets its own RNG stream seeded by
    /// [`per_node_seed`]`(seed, node)`, so a node's decision sequence
    /// depends only on the observations it saw — not on the global
    /// interleaving of other nodes' decisions.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn deploy_stochastic(
        policy: &CoordinationPolicy,
        num_nodes: usize,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut agents = Self::deploy(policy, num_nodes);
        agents.samplers = Some(
            (0..num_nodes)
                .map(|v| rand::rngs::StdRng::seed_from_u64(per_node_seed(seed, v)))
                .collect(),
        );
        agents
    }

    /// One local inference step at `node`: greedy argmax, or a draw from
    /// the node's own RNG stream under a stochastic deployment. This is
    /// the per-node decision primitive [`Coordinator::decide`] routes to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `obs` mismatches the policy's
    /// input dimension.
    pub fn sample_action(&mut self, node: NodeId, obs: &[f32]) -> usize {
        let agent = &self.agents[node.0];
        match &mut self.samplers {
            Some(rngs) => agent.act_sampled(obs, &mut rngs[node.0]),
            None => agent.act(obs),
        }
    }

    /// The per-node decision counters.
    pub fn decisions_per_node(&self) -> &[u64] {
        &self.decisions
    }

    /// The local agent at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn agent(&self, node: NodeId) -> &CoordinationPolicy {
        &self.agents[node.0]
    }
}

impl Coordinator for DistributedAgents {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        let obs = self.adapter.observe(sim, dp);
        self.decisions[dp.node.0] += 1;
        // Only the node's own agent (and its own RNG stream) is
        // consulted: fully local inference.
        Action::from_index(self.sample_action(dp.node, &obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_nn::Activation;
    use rand::SeedableRng;

    fn policy(degree: usize) -> CoordinationPolicy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let actor = Mlp::new(
            &[4 * degree + 4, 16, degree + 1],
            Activation::Tanh,
            &mut rng,
        );
        CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
    }

    #[test]
    fn construction_checks_shapes() {
        let p = policy(3);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.adapter().obs_dim(), 16);
    }

    #[test]
    #[should_panic(expected = "4·Δ+4")]
    fn rejects_mismatched_actor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let actor = Mlp::new(&[10, 8, 4], Activation::Tanh, &mut rng);
        CoordinationPolicy::new(actor, 3, PolicyMetadata::default());
    }

    #[test]
    fn json_round_trip_preserves_decisions() {
        let p = policy(3);
        let json = p.to_json().unwrap();
        let q = CoordinationPolicy::from_json(&json).unwrap();
        for trial in 0..20 {
            let obs: Vec<f32> = (0..16)
                .map(|i| ((trial * 31 + i * 7) % 21) as f32 / 10.0 - 1.0)
                .collect();
            assert_eq!(p.act(&obs), q.act(&obs), "trial {trial}");
        }
    }

    #[test]
    fn save_load_round_trip() {
        let p = policy(3);
        let dir = std::env::temp_dir().join("dosco-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        p.save(&path).unwrap();
        let q = CoordinationPolicy::load(&path).unwrap();
        assert_eq!(p.degree(), q.degree());
        let obs = vec![0.0f32; 16];
        assert_eq!(p.act(&obs), q.act(&obs));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_and_names_the_path() {
        let dir = std::env::temp_dir().join("dosco-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = CoordinationPolicy::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("garbage.json"),
            "parse error must name the file: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_names_the_path() {
        let path = std::env::temp_dir().join("dosco-policy-test-nonexistent.json");
        let err = CoordinationPolicy::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(
            err.to_string()
                .contains("dosco-policy-test-nonexistent.json"),
            "I/O error must name the file: {err}"
        );
    }

    #[test]
    fn save_into_missing_directory_names_the_path() {
        let p = policy(3);
        let path = std::env::temp_dir()
            .join("dosco-policy-test-no-such-dir")
            .join("p.json");
        let err = p.save(&path).unwrap_err();
        assert!(
            err.to_string().contains("dosco-policy-test-no-such-dir"),
            "write error must name the file: {err}"
        );
    }

    #[test]
    fn load_detects_truncated_artifact_naming_expected_vs_actual() {
        let p = policy(3);
        let dir = std::env::temp_dir().join("dosco-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        p.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let cut = full.len() - 40;
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = CoordinationPolicy::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "must say truncated: {msg}");
        assert!(msg.contains("truncated.json"), "must name the path: {msg}");
        let expected_len = full.split_once('\n').unwrap().1.len();
        assert!(
            msg.contains(&expected_len.to_string())
                && msg.contains(&(expected_len - 40).to_string()),
            "must report expected vs actual length: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_detects_corrupt_artifact_naming_checksums() {
        let p = policy(3);
        let dir = std::env::temp_dir().join("dosco-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        p.save(&path).unwrap();
        // Flip one payload digit (same length, different bytes).
        let full = std::fs::read_to_string(&path).unwrap();
        let (header, payload) = full.split_once('\n').unwrap();
        let flip = payload
            .char_indices()
            .find(|&(_, c)| c.is_ascii_digit())
            .map(|(i, c)| (i, if c == '9' { '8' } else { '9' }))
            .expect("weights contain digits");
        let mut mutated: Vec<char> = payload.chars().collect();
        mutated[flip.0] = flip.1;
        let mutated: String = mutated.into_iter().collect();
        std::fs::write(&path, format!("{header}\n{mutated}")).unwrap();
        let err = CoordinationPolicy::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "must say corrupt: {msg}");
        assert!(msg.contains("corrupt.json"), "must name the path: {msg}");
        assert!(
            msg.contains(&format!("{:016x}", fnv1a64(payload.as_bytes()))),
            "must report the expected checksum: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Pre-header artifacts (bare policy JSON) still load.
    #[test]
    fn load_accepts_legacy_bare_json_artifacts() {
        let p = policy(3);
        let dir = std::env::temp_dir().join("dosco-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, p.to_json().unwrap()).unwrap();
        let q = CoordinationPolicy::load(&path).unwrap();
        assert_eq!(p.degree(), q.degree());
        assert_eq!(p.act(&[0.25f32; 16]), q.act(&[0.25f32; 16]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    /// Per-node streams are independent: a node's decision sequence is
    /// identical whether its decisions run back-to-back or interleaved
    /// with other nodes'. With the old shared RNG the interleaved run
    /// consumed draws out from under each node and the sequences
    /// diverged.
    #[test]
    fn stochastic_streams_are_order_invariant() {
        let p = policy(3);
        let obs_for = |node: usize, step: usize| -> Vec<f32> {
            (0..16)
                .map(|i| ((node * 53 + step * 31 + i * 7) % 19) as f32 / 9.0 - 1.0)
                .collect()
        };
        let steps = 12;
        // Run A: node 0's decisions first, then node 1's, then node 2's.
        let mut a = DistributedAgents::deploy_stochastic(&p, 3, 42);
        let mut seq_a = vec![Vec::new(); 3];
        for (node, seq) in seq_a.iter_mut().enumerate() {
            for step in 0..steps {
                seq.push(a.sample_action(NodeId(node), &obs_for(node, step)));
            }
        }
        // Run B: the same decisions interleaved round-robin.
        let mut b = DistributedAgents::deploy_stochastic(&p, 3, 42);
        let mut seq_b = vec![Vec::new(); 3];
        for step in 0..steps {
            for (node, seq) in seq_b.iter_mut().enumerate() {
                seq.push(b.sample_action(NodeId(node), &obs_for(node, step)));
            }
        }
        assert_eq!(seq_a, seq_b, "per-node sequences must ignore interleaving");
        // And the streams are genuinely per-node: distinct seeds give
        // distinct streams somewhere (overwhelmingly likely).
        assert_ne!(per_node_seed(42, 0), per_node_seed(42, 1));
    }

    #[test]
    fn per_node_seed_is_injective_on_small_ranges() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..1000 {
            assert!(seen.insert(per_node_seed(7, node)), "collision at {node}");
        }
    }

    #[test]
    fn distributed_agents_route_by_node() {
        use dosco_simnet::ScenarioConfig;
        let p = policy(3);
        let scenario = ScenarioConfig::paper_base(2).with_horizon(300.0);
        let num_nodes = scenario.topology.num_nodes();
        let mut agents = DistributedAgents::deploy(&p, num_nodes);
        let mut sim = Simulation::new(scenario, 4);
        sim.run(&mut agents);
        let total: u64 = agents.decisions_per_node().iter().sum();
        assert!(total > 0);
        assert_eq!(agents.decisions_per_node().len(), num_nodes);
        // Ingress nodes certainly decided (flows arrive there).
        assert!(agents.decisions_per_node()[0] > 0);
    }
}
