//! Centralized training of the shared policy (Alg. 1, Fig. 4a).
//!
//! Experience from all nodes flows into one logically centralized network:
//! the Gym adapter serializes every node's decisions into a single
//! trajectory, `l` parallel environment copies diversify the data, and
//! `k` seeds are trained in parallel with the best agent selected for
//! deployment.

use crate::eval;
use crate::gymenv::CoordEnv;
use dosco_chaos::ChurnSchedule;
use crate::policy::{CoordinationPolicy, PolicyMetadata};
use crate::reward::RewardConfig;
use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::acktr::{Acktr, AcktrConfig};
use dosco_rl::env::Env;
use dosco_rl::ppo::{Ppo, PpoConfig};
use dosco_rl::trainer::train_multi_seed;
use dosco_runtime::RuntimeConfig;
use dosco_simnet::ScenarioConfig;
use serde::{Deserialize, Serialize};

/// The training algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// ACKTR — the paper's algorithm (Sec. IV-C2).
    Acktr,
    /// Plain A2C with RMSprop (ablation).
    A2c,
    /// PPO-clip (ablation).
    Ppo,
}

impl Algorithm {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Acktr => "acktr",
            Algorithm::A2c => "a2c",
            Algorithm::Ppo => "ppo",
        }
    }
}

/// Training configuration (paper hyperparameters as defaults, at reduced
/// scale where noted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Algorithm (paper: ACKTR).
    pub algorithm: Algorithm,
    /// Environment transitions per seed.
    pub total_steps: usize,
    /// Parallel environment copies `l` (paper: 4).
    pub n_envs: usize,
    /// Training seeds `k` (paper: 10 — default reduced for runtime).
    pub seeds: Vec<u64>,
    /// Reward shaping coefficients.
    pub reward: RewardConfig,
    /// ACKTR hyperparameters (paper values).
    pub acktr: AcktrConfig,
    /// A2C hyperparameters (for [`Algorithm::A2c`]).
    pub a2c: A2cConfig,
    /// PPO hyperparameters (for [`Algorithm::Ppo`]).
    pub ppo: PpoConfig,
    /// Pad observation/action spaces to this degree instead of the
    /// training topology's (for cross-topology transfer).
    pub degree_override: Option<usize>,
    /// Horizon of the post-training evaluation episode used to score and
    /// select the best seed.
    pub eval_horizon: f64,
    /// Seed for the evaluation episode.
    pub eval_seed: u64,
    /// Number of training checkpoints per seed: training pauses this many
    /// times for a greedy evaluation, and the best checkpoint is kept
    /// (on-policy DRL can peak before the end of the budget; cf. the
    /// best-model callbacks of stable-baselines [46]). 1 disables
    /// checkpointing. The learning rate decays linearly to 10 % across
    /// checkpoints.
    pub checkpoints: usize,
    /// Train on the scenario's canonical capacity draw only, instead of
    /// re-drawing capacities per episode. Narrower distribution: easier
    /// to learn at small budgets, weaker transfer across seeded draws.
    pub fixed_capacity_training: bool,
    /// Run each seed's training chunks through the actor–learner runtime
    /// (`dosco_runtime`) instead of the algorithm's serial loop. `None`
    /// keeps the serial path; `Some(sync)` is bit-identical to it.
    pub runtime: Option<RuntimeConfig>,
    /// Substrate churn applied during training episodes: each episode
    /// compiles this schedule against the scenario topology with a
    /// churn-private seed stream, so the policy learns under link/node
    /// failures and degradations. The held-out selection episode stays on
    /// the clean substrate. `None` trains exactly as before.
    pub churn: Option<ChurnSchedule>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            algorithm: Algorithm::Acktr,
            total_steps: 60_000,
            n_envs: 4,
            seeds: vec![0, 1, 2],
            reward: RewardConfig::default(),
            acktr: AcktrConfig::default(),
            a2c: A2cConfig::default(),
            ppo: PpoConfig::default(),
            degree_override: None,
            eval_horizon: 2_000.0,
            eval_seed: 0xE7A1,
            checkpoints: 8,
            fixed_capacity_training: false,
            runtime: None,
            churn: None,
        }
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainedPolicy {
    /// The best policy across seeds, ready for distributed deployment.
    pub policy: CoordinationPolicy,
    /// Per-seed selection scores (success ratio on the eval episode),
    /// best first.
    pub seed_scores: Vec<(u64, f32)>,
}

fn make_envs(
    scenario: &ScenarioConfig,
    reward: RewardConfig,
    n_envs: usize,
    seed: u64,
    degree_override: Option<usize>,
    fixed_capacities: bool,
    churn: Option<&ChurnSchedule>,
) -> Vec<Box<dyn Env>> {
    (0..n_envs)
        .map(|i| {
            let mut env = CoordEnv::new(
                scenario.clone(),
                reward,
                seed.wrapping_mul(1_000_003).wrapping_add(i as u64),
                degree_override,
            );
            if fixed_capacities {
                env = env.with_fixed_capacities();
            }
            if let Some(schedule) = churn {
                env = env.with_churn(schedule.clone());
            }
            Box::new(env) as Box<dyn Env>
        })
        .collect()
}

/// Trains the distributed coordination policy on `scenario` (Alg. 1):
/// centralized training over `config.n_envs` parallel environments for
/// every seed in `config.seeds` (in parallel threads), then selects the
/// seed whose greedy policy achieves the highest success ratio on a held-
/// out evaluation episode.
///
/// # Panics
///
/// Panics if the scenario is invalid or `config.seeds` is empty.
pub fn train_distributed(scenario: &ScenarioConfig, config: &TrainConfig) -> TrainedPolicy {
    scenario.validate().expect("scenario must be valid");
    let degree = config
        .degree_override
        .unwrap_or_else(|| scenario.topology.network_degree());
    let obs_dim = 4 * degree + 4;
    let num_actions = degree + 1;

    let eval_scenario = scenario.clone().with_horizon(config.eval_horizon);
    let checkpoints = config.checkpoints.max(1);
    let chunk = (config.total_steps / checkpoints).max(1);

    let results = train_multi_seed(&config.seeds, |seed| {
        let mut envs = make_envs(
            scenario,
            config.reward,
            config.n_envs,
            seed,
            config.degree_override,
            config.fixed_capacity_training,
            config.churn.as_ref(),
        );
        // One closure per algorithm: train a chunk, hand back the actor.
        enum Agent {
            Acktr(Box<Acktr>),
            A2c(Box<A2c>),
            Ppo(Box<Ppo>),
        }
        let mut agent = match config.algorithm {
            Algorithm::Acktr => {
                let mut c = config.acktr;
                c.lr_decay = false; // schedule handled across checkpoints
                Agent::Acktr(Box::new(Acktr::new(obs_dim, num_actions, c, seed)))
            }
            Algorithm::A2c => {
                let mut c = config.a2c;
                c.lr_decay = false;
                Agent::A2c(Box::new(A2c::new(obs_dim, num_actions, c, seed)))
            }
            Algorithm::Ppo => Agent::Ppo(Box::new(Ppo::new(obs_dim, num_actions, config.ppo, seed))),
        };
        let base_lr = match config.algorithm {
            Algorithm::Acktr => config.acktr.lr,
            Algorithm::A2c => config.a2c.lr,
            Algorithm::Ppo => config.ppo.lr,
        };
        let mut best: Option<(f32, CoordinationPolicy)> = None;
        for ck in 0..checkpoints {
            let frac = ck as f32 / checkpoints as f32;
            let lr = base_lr * (1.0 - 0.9 * frac);
            // One chunk of training per arm: through the actor–learner
            // runtime when configured, the algorithm's serial loop
            // otherwise (`Some(sync)` and `None` are bit-identical).
            let rt = config.runtime.as_ref();
            let actor = match &mut agent {
                Agent::Acktr(a) => {
                    a.set_lr(lr);
                    match rt {
                        Some(rt) => {
                            dosco_runtime::train(&mut **a, &mut envs, chunk, rt);
                        }
                        None => {
                            a.train(&mut envs, chunk);
                        }
                    }
                    a.actor().clone()
                }
                Agent::A2c(a) => {
                    a.set_lr(lr);
                    match rt {
                        Some(rt) => {
                            dosco_runtime::train(&mut **a, &mut envs, chunk, rt);
                        }
                        None => {
                            a.train(&mut envs, chunk);
                        }
                    }
                    a.actor().clone()
                }
                Agent::Ppo(a) => {
                    a.set_lr(lr);
                    match rt {
                        Some(rt) => {
                            dosco_runtime::train(&mut **a, &mut envs, chunk, rt);
                        }
                        None => {
                            a.train(&mut envs, chunk);
                        }
                    }
                    a.actor().clone()
                }
            };
            let policy = CoordinationPolicy::new(
                actor,
                degree,
                PolicyMetadata {
                    scenario: format!(
                        "{} / {} ingress",
                        scenario.topology.name(),
                        scenario.ingresses.len()
                    ),
                    algorithm: config.algorithm.name().to_string(),
                    seed,
                    score: 0.0,
                    total_steps: (ck + 1) * chunk,
                },
            );
            // Score by deployed (greedy, distributed) success ratio,
            // averaged over a few random capacity draws to match the
            // evaluation protocol.
            let score = (0..3)
                .map(|i| {
                    eval::evaluate_with_capacity_draw(
                        &policy,
                        &eval_scenario,
                        config.eval_seed + i,
                    )
                    .success_ratio() as f32
                })
                .sum::<f32>()
                / 3.0;
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, policy));
            }
        }
        let (score, policy) = best.expect("at least one checkpoint");
        (policy, score)
    });

    let seed_scores: Vec<(u64, f32)> = results.iter().map(|r| (r.seed, r.score)).collect();
    let best = results
        .into_iter()
        .next()
        .expect("at least one seed result");
    let mut policy = best.agent;
    policy.metadata.score = best.score;
    TrainedPolicy {
        policy,
        seed_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_traffic::ArrivalPattern;

    /// End-to-end smoke test at tiny scale: training runs, returns a
    /// deployable policy, and the seed scores are sorted best-first.
    #[test]
    fn trains_and_selects_best_seed() {
        let scenario = ScenarioConfig::paper_base(1)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(400.0);
        let config = TrainConfig {
            algorithm: Algorithm::A2c, // cheapest for a smoke test
            total_steps: 2_000,
            n_envs: 2,
            seeds: vec![1, 2],
            a2c: A2cConfig {
                hidden: [16, 16],
                ..A2cConfig::default()
            },
            eval_horizon: 300.0,
            ..TrainConfig::default()
        };
        let trained = train_distributed(&scenario, &config);
        assert_eq!(trained.seed_scores.len(), 2);
        assert!(trained.seed_scores[0].1 >= trained.seed_scores[1].1);
        assert_eq!(trained.policy.degree(), 3);
        assert_eq!(trained.policy.metadata.algorithm, "a2c");
        // The returned policy is the best seed's.
        assert!((trained.policy.metadata.score - trained.seed_scores[0].1).abs() < 1e-6);
    }

    #[test]
    fn acktr_training_smoke() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(300.0);
        let config = TrainConfig {
            algorithm: Algorithm::Acktr,
            total_steps: 600,
            n_envs: 2,
            seeds: vec![3],
            acktr: AcktrConfig {
                hidden: [16, 16],
                ..AcktrConfig::default()
            },
            eval_horizon: 200.0,
            ..TrainConfig::default()
        };
        let trained = train_distributed(&scenario, &config);
        assert_eq!(trained.policy.metadata.algorithm, "acktr");
    }

    /// Routing the training chunks through the actor–learner runtime in
    /// sync mode yields the exact same policy and scores as the serial
    /// path — the subsystem drops into `train_distributed` losslessly.
    #[test]
    fn runtime_sync_path_matches_serial_training() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(250.0);
        let base = TrainConfig {
            algorithm: Algorithm::A2c,
            total_steps: 800,
            n_envs: 2,
            seeds: vec![4],
            a2c: A2cConfig {
                hidden: [8, 8],
                ..A2cConfig::default()
            },
            eval_horizon: 150.0,
            checkpoints: 2,
            ..TrainConfig::default()
        };
        let serial = train_distributed(&scenario, &base);
        let runtime = TrainConfig {
            runtime: Some(RuntimeConfig::sync()),
            ..base
        };
        let synced = train_distributed(&scenario, &runtime);
        assert_eq!(synced.seed_scores, serial.seed_scores);
        assert_eq!(
            synced.policy.actor().flat_params(),
            serial.policy.actor().flat_params(),
            "runtime-sync policy diverged from the serial path"
        );
    }

    #[test]
    fn degree_override_produces_transferable_policy() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(200.0);
        let config = TrainConfig {
            algorithm: Algorithm::A2c,
            total_steps: 400,
            n_envs: 1,
            seeds: vec![0],
            a2c: A2cConfig {
                hidden: [8, 8],
                ..A2cConfig::default()
            },
            degree_override: Some(7),
            eval_horizon: 150.0,
            ..TrainConfig::default()
        };
        let trained = train_distributed(&scenario, &config);
        assert_eq!(trained.policy.degree(), 7);
        assert_eq!(trained.policy.actor().inputs(), 32);
    }
}
