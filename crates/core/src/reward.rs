//! The shaped reward function (Sec. IV-B3).
//!
//! The sparse main signal is +10 for a completed flow and −10 for a
//! dropped flow. To make early training tractable, weaker shaping signals
//! are added: `+1/n_{s_f}` when a flow traverses an instance, `−d_l/D_G`
//! when a flow is sent over link `l`, and `−1/D_G` when a fully processed
//! flow is held at a node. The shaping terms are deliberately small
//! relative to the terminal rewards.

use dosco_simnet::SimEvent;
use serde::{Deserialize, Serialize};

/// Reward coefficients. Defaults are the paper's values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Reward for a successfully completed flow (paper: +10).
    pub completion: f32,
    /// Reward for a dropped flow (paper: −10).
    pub drop: f32,
    /// Scale of the per-instance progress bonus `+scale/n_s` (paper: 1).
    pub traversal_scale: f32,
    /// Scale of the per-hop penalty `−scale·d_l/D_G` (paper: 1).
    pub hop_scale: f32,
    /// Scale of the idle-hold penalty `−scale/D_G` (paper: 1).
    pub hold_scale: f32,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            completion: 10.0,
            drop: -10.0,
            traversal_scale: 1.0,
            hop_scale: 1.0,
            hold_scale: 1.0,
        }
    }
}

impl RewardConfig {
    /// A sparse-only variant (shaping off) for the reward-shaping ablation.
    pub fn sparse_only() -> Self {
        RewardConfig {
            traversal_scale: 0.0,
            hop_scale: 0.0,
            hold_scale: 0.0,
            ..RewardConfig::default()
        }
    }

    /// The reward contributed by one simulator event. `diameter` is the
    /// network delay diameter `D_G` used to normalize hop/hold penalties.
    pub fn event_reward(&self, event: &SimEvent, diameter: f64) -> f32 {
        let d = diameter.max(1e-12) as f32;
        match event {
            SimEvent::FlowCompleted { .. } => self.completion,
            SimEvent::FlowDropped { .. } => self.drop,
            SimEvent::InstanceTraversed { service_len, .. } => {
                self.traversal_scale / (*service_len).max(1) as f32
            }
            SimEvent::Forwarded { link_delay, .. } => {
                -self.hop_scale * (*link_delay as f32) / d
            }
            SimEvent::Held { .. } => -self.hold_scale / d,
            SimEvent::FlowArrived { .. }
            | SimEvent::InstanceStarted { .. }
            | SimEvent::InstanceStopped { .. }
            | SimEvent::ChurnApplied { .. } => 0.0,
        }
    }

    /// Sums the rewards of a batch of events (the reward credited to the
    /// previous action in Alg. 1 ln. 6-7).
    pub fn batch_reward(&self, events: &[SimEvent], diameter: f64) -> f32 {
        events.iter().map(|e| self.event_reward(e, diameter)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::{DropReason, FlowId};
    use dosco_topology::{LinkId, NodeId};

    fn completed() -> SimEvent {
        SimEvent::FlowCompleted {
            flow: FlowId(0),
            time: 1.0,
            e2e_delay: 5.0,
            node: NodeId(0),
        }
    }

    #[test]
    fn terminal_rewards() {
        let r = RewardConfig::default();
        assert_eq!(r.event_reward(&completed(), 10.0), 10.0);
        let dropped = SimEvent::FlowDropped {
            flow: FlowId(0),
            time: 1.0,
            reason: DropReason::LinkCapacity,
            node: NodeId(0),
        };
        assert_eq!(r.event_reward(&dropped, 10.0), -10.0);
    }

    #[test]
    fn shaping_rewards_scale_correctly() {
        let r = RewardConfig::default();
        let traversed = SimEvent::InstanceTraversed {
            flow: FlowId(0),
            node: NodeId(0),
            component: dosco_simnet::ComponentId(0),
            service_len: 4,
            time: 0.0,
        };
        assert_eq!(r.event_reward(&traversed, 10.0), 0.25);
        let forwarded = SimEvent::Forwarded {
            flow: FlowId(0),
            from: NodeId(0),
            to: NodeId(1),
            link: LinkId(0),
            link_delay: 2.0,
            time: 0.0,
        };
        assert_eq!(r.event_reward(&forwarded, 10.0), -0.2);
        let held = SimEvent::Held {
            flow: FlowId(0),
            node: NodeId(0),
            time: 0.0,
        };
        assert_eq!(r.event_reward(&held, 10.0), -0.1);
    }

    #[test]
    fn shaping_is_much_smaller_than_terminals() {
        // Sec. IV-B3: auxiliary rewards must stay well below ±10; in
        // particular, traversing the full chain (sum = +1) must be worth
        // far less than completing (+10).
        let r = RewardConfig::default();
        let per_chain = r.traversal_scale;
        assert!(per_chain * 5.0 < r.completion);
        // Max hop penalty (a diameter-long link) is −1, well above −10.
        let max_hop = SimEvent::Forwarded {
            flow: FlowId(0),
            from: NodeId(0),
            to: NodeId(1),
            link: LinkId(0),
            link_delay: 10.0,
            time: 0.0,
        };
        assert!(r.event_reward(&max_hop, 10.0) > r.drop / 5.0);
    }

    #[test]
    fn neutral_events_are_zero() {
        let r = RewardConfig::default();
        let arrived = SimEvent::FlowArrived {
            flow: FlowId(0),
            node: NodeId(0),
            time: 0.0,
        };
        assert_eq!(r.event_reward(&arrived, 10.0), 0.0);
    }

    #[test]
    fn batch_reward_sums() {
        let r = RewardConfig::default();
        let held = SimEvent::Held {
            flow: FlowId(0),
            node: NodeId(0),
            time: 0.0,
        };
        let batch = vec![completed(), held.clone(), held];
        assert!((r.batch_reward(&batch, 10.0) - 9.8).abs() < 1e-6);
        assert_eq!(r.batch_reward(&[], 10.0), 0.0);
    }

    #[test]
    fn sparse_only_disables_shaping() {
        let r = RewardConfig::sparse_only();
        let held = SimEvent::Held {
            flow: FlowId(0),
            node: NodeId(0),
            time: 0.0,
        };
        assert_eq!(r.event_reward(&held, 10.0), 0.0);
        assert_eq!(r.event_reward(&completed(), 10.0), 10.0);
    }
}
