//! Distributed per-node training with optional federated averaging — the
//! design alternative of Sec. IV-C1, built out as an extension.
//!
//! The paper *argues against* giving every node its own network trained
//! only on its own experience: "agents at nodes that are seldom traversed
//! by flows would barely be trained at all, possibly leading to bad
//! policies for these nodes", and instead proposes centralized training
//! with pooled experience. It also sketches the remedy from federated
//! learning [36], [37]: train locally, periodically synchronize updates.
//! This module implements both points so the claim can be measured:
//!
//! - [`train_per_node`] trains one actor-critic per node on that node's
//!   own decisions, with *per-flow credit*: the reward of every event on a
//!   flow is attributed to the node that last acted on that flow,
//! - with [`FederatedConfig::sync_interval`] set, all node networks are
//!   periodically averaged (FedAvg-style), recovering most of the pooled-
//!   experience benefit while keeping training local.
//!
//! The result deploys as [`PerNodePolicies`], a drop-in
//! [`Coordinator`] where every node runs its own (now genuinely
//! different) network.

use crate::observe::ObservationAdapter;
use crate::policy::{CoordinationPolicy, PolicyMetadata};
use crate::reward::RewardConfig;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::optim::{Optimizer, RmsProp};
use dosco_nn::{Activation, Categorical};
use dosco_simnet::{Action, Coordinator, DecisionPoint, FlowId, ScenarioConfig, SimEvent, Simulation};
use dosco_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for per-node training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Total coordination decisions to train over (across all nodes).
    pub total_decisions: usize,
    /// Per-node minibatch size triggering a local update.
    pub batch_size: usize,
    /// Discount factor.
    pub gamma: f32,
    /// RMSprop learning rate for the local updates.
    pub lr: f32,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Hidden sizes of the per-node networks (small: every node trains
    /// from its own data only).
    pub hidden: [usize; 2],
    /// Average all node networks every this many decisions (FedAvg);
    /// `None` = fully independent training (the paper's strawman).
    pub sync_interval: Option<usize>,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            total_decisions: 40_000,
            batch_size: 32,
            gamma: 0.99,
            lr: 7e-3,
            ent_coef: 0.01,
            hidden: [64, 64],
            sync_interval: Some(2_000),
        }
    }
}

/// One stored transition of a node-local learner.
#[derive(Debug, Clone)]
struct Transition {
    obs: Vec<f32>,
    action: usize,
    reward: f32,
    next_obs: Option<Vec<f32>>, // None = terminal for this flow
}

/// A node-local actor-critic learner.
#[derive(Debug)]
struct NodeLearner {
    actor: Mlp,
    critic: Mlp,
    actor_opt: RmsProp,
    critic_opt: RmsProp,
    buffer: Vec<Transition>,
    updates: u64,
}

impl NodeLearner {
    fn new(obs_dim: usize, num_actions: usize, cfg: &FederatedConfig, rng: &mut StdRng) -> Self {
        NodeLearner {
            actor: Mlp::new(
                &[obs_dim, cfg.hidden[0], cfg.hidden[1], num_actions],
                Activation::Tanh,
                rng,
            ),
            critic: Mlp::new(
                &[obs_dim, cfg.hidden[0], cfg.hidden[1], 1],
                Activation::Tanh,
                rng,
            ),
            actor_opt: RmsProp::with_lr(cfg.lr),
            critic_opt: RmsProp::with_lr(cfg.lr),
            buffer: Vec::new(),
            updates: 0,
        }
    }

    /// One A2C-style update over the buffered transitions (1-step TD
    /// advantages with per-flow credit).
    fn update(&mut self, cfg: &FederatedConfig) {
        let batch = self.buffer.len();
        if batch == 0 {
            return;
        }
        let obs_dim = self.actor.inputs();
        let mut obs = Matrix::zeros(batch, obs_dim);
        for (i, t) in self.buffer.iter().enumerate() {
            obs.row_mut(i).copy_from_slice(&t.obs);
        }
        let values = self.critic.forward(&obs);
        // Bootstrap next-state values where the flow continued.
        let mut advantages = Vec::with_capacity(batch);
        let mut returns = Vec::with_capacity(batch);
        for (i, t) in self.buffer.iter().enumerate() {
            let next_v = match &t.next_obs {
                Some(o) => self
                    .critic
                    .forward(&Matrix::row_vector(o))
                    .get(0, 0),
                None => 0.0,
            };
            let ret = t.reward + cfg.gamma * next_v;
            returns.push(ret);
            advantages.push(ret - values.get(i, 0));
        }
        let actions: Vec<usize> = self.buffer.iter().map(|t| t.action).collect();

        let actor_cache = self.actor.forward_cached(&obs);
        let dist = Categorical::new(&actor_cache.output);
        let dlogits = dist.policy_gradient_logits(&actions, &advantages, cfg.ent_coef);
        let mut actor_grads = self.actor.backward(&actor_cache, &dlogits);
        actor_grads.clip_global_norm(0.5);
        self.actor_opt.step(&mut self.actor, &actor_grads);

        let critic_cache = self.critic.forward_cached(&obs);
        let mut dv = Matrix::zeros(batch, 1);
        for (i, &ret) in returns.iter().enumerate().take(batch) {
            dv.set(i, 0, (critic_cache.output.get(i, 0) - ret) / batch as f32);
        }
        let mut critic_grads = self.critic.backward(&critic_cache, &dv);
        critic_grads.clip_global_norm(0.5);
        self.critic_opt.step(&mut self.critic, &critic_grads);

        self.buffer.clear();
        self.updates += 1;
    }
}

/// Averages the parameters of all learners' actors and critics in place
/// (FedAvg with equal weights).
fn fed_avg(learners: &mut [NodeLearner]) {
    let n = learners.len();
    if n < 2 {
        return;
    }
    // Average into the first, then copy out — via soft updates with
    // growing weights: avg_k = avg_{k-1} + (x_k - avg_{k-1}) / k.
    let mut avg_actor = learners[0].actor.clone();
    let mut avg_critic = learners[0].critic.clone();
    for (k, l) in learners.iter().enumerate().skip(1) {
        let tau = 1.0 / (k as f32 + 1.0);
        avg_actor.soft_update_from(&l.actor, tau);
        avg_critic.soft_update_from(&l.critic, tau);
    }
    for l in learners.iter_mut() {
        l.actor = avg_actor.clone();
        l.critic = avg_critic.clone();
    }
}

/// Per-node policies: each node deploys its own, genuinely different
/// network. Implements [`Coordinator`].
#[derive(Debug, Clone)]
pub struct PerNodePolicies {
    policies: Vec<CoordinationPolicy>,
    adapter: ObservationAdapter,
}

impl PerNodePolicies {
    /// Wraps one policy per node.
    ///
    /// # Panics
    ///
    /// Panics if `policies` is empty or degrees are inconsistent.
    pub fn new(policies: Vec<CoordinationPolicy>) -> Self {
        assert!(!policies.is_empty(), "need at least one node policy");
        let degree = policies[0].degree();
        assert!(
            policies.iter().all(|p| p.degree() == degree),
            "all node policies must share the padded degree"
        );
        PerNodePolicies {
            adapter: ObservationAdapter::new(degree),
            policies,
        }
    }

    /// The per-node policies.
    pub fn policies(&self) -> &[CoordinationPolicy] {
        &self.policies
    }
}

impl Coordinator for PerNodePolicies {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        let obs = self.adapter.observe(sim, dp);
        Action::from_index(self.policies[dp.node.0].act(&obs))
    }
}

/// Trains one network per node on that node's own decisions (with
/// per-flow reward credit), optionally FedAvg-synchronized. Returns the
/// deployable per-node policies.
///
/// # Panics
///
/// Panics if the scenario is invalid.
pub fn train_per_node(
    scenario: &ScenarioConfig,
    config: &FederatedConfig,
    seed: u64,
) -> PerNodePolicies {
    scenario.validate().expect("scenario must be valid");
    let degree = scenario.topology.network_degree();
    let adapter = ObservationAdapter::new(degree);
    let obs_dim = adapter.obs_dim();
    let num_actions = adapter.num_actions();
    let num_nodes = scenario.topology.num_nodes();
    let reward_cfg = RewardConfig::default();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut learners: Vec<NodeLearner> = (0..num_nodes)
        .map(|_| NodeLearner::new(obs_dim, num_actions, config, &mut rng))
        .collect();

    // Pending transition per flow: the node that last acted on it, its
    // observation/action, and the reward accumulated since.
    let mut pending: HashMap<FlowId, (NodeId, Vec<f32>, usize, f32)> = HashMap::new();

    let mut decisions = 0usize;
    let mut episode = 0u64;
    let mut sim = Simulation::new(scenario.clone(), seed.wrapping_add(episode));
    let diameter = sim.diameter();
    while decisions < config.total_decisions {
        let Some(dp) = sim.next_decision() else {
            // Episode over: flush pending flows as terminal.
            for (_, (node, obs, action, r)) in pending.drain() {
                learners[node.0].buffer.push(Transition {
                    obs,
                    action,
                    reward: r,
                    next_obs: None,
                });
            }
            episode += 1;
            sim = Simulation::new(scenario.clone(), seed.wrapping_add(episode));
            continue;
        };
        // Credit events since the last decision to the flows' last actors.
        for ev in sim.drain_events() {
            let Some(flow) = ev.flow() else { continue };
            let r = reward_cfg.event_reward(&ev, diameter);
            if let Some(p) = pending.get_mut(&flow) {
                p.3 += r;
            }
            if matches!(
                ev,
                SimEvent::FlowCompleted { .. } | SimEvent::FlowDropped { .. }
            ) {
                if let Some((node, obs, action, reward)) = pending.remove(&flow) {
                    learners[node.0].buffer.push(Transition {
                        obs,
                        action,
                        reward,
                        next_obs: None,
                    });
                }
            }
        }
        let obs = adapter.observe(&sim, &dp);
        // The flow reached its next decision: close the previous pending
        // transition with this observation as the successor state.
        if let Some((node, prev_obs, action, reward)) = pending.remove(&dp.flow) {
            learners[node.0].buffer.push(Transition {
                obs: prev_obs,
                action,
                reward,
                next_obs: Some(obs.clone()),
            });
        }
        // The owning node's agent acts (stochastic during training).
        let learner = &mut learners[dp.node.0];
        let dist = Categorical::new(&learner.actor.forward(&Matrix::row_vector(&obs)));
        let action = dist.sample(&mut rng)[0];
        pending.insert(dp.flow, (dp.node, obs, action, 0.0));
        sim.apply(Action::from_index(action));
        decisions += 1;

        // Local updates when a node's buffer fills.
        if learners[dp.node.0].buffer.len() >= config.batch_size {
            learners[dp.node.0].update(config);
        }
        // Periodic federated synchronization.
        if let Some(interval) = config.sync_interval {
            if decisions.is_multiple_of(interval) {
                fed_avg(&mut learners);
            }
        }
    }

    let policies = learners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            CoordinationPolicy::new(
                l.actor,
                degree,
                PolicyMetadata {
                    scenario: format!("{} node v{}", scenario.topology.name(), i + 1),
                    algorithm: if config.sync_interval.is_some() {
                        "per-node+fedavg".into()
                    } else {
                        "per-node".into()
                    },
                    seed,
                    score: 0.0,
                    total_steps: config.total_decisions,
                },
            )
        })
        .collect();
    PerNodePolicies::new(policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_traffic::ArrivalPattern;

    fn toy_config() -> FederatedConfig {
        FederatedConfig {
            total_decisions: 1_500,
            batch_size: 16,
            hidden: [8, 8],
            sync_interval: Some(400),
            ..FederatedConfig::default()
        }
    }

    #[test]
    fn trains_and_deploys_per_node_policies() {
        let scenario = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(600.0);
        let policies = train_per_node(&scenario, &toy_config(), 1);
        assert_eq!(policies.policies().len(), 11);
        assert_eq!(policies.policies()[0].metadata.algorithm, "per-node+fedavg");
        // Deploy as a coordinator.
        let mut coordinator = policies.clone();
        let mut sim = Simulation::new(scenario, 9);
        let m = sim.run(&mut coordinator).clone();
        assert!(m.arrived > 0);
        assert_eq!(m.arrived, m.completed + m.dropped_total() + m.in_flight());
    }

    #[test]
    fn fedavg_makes_networks_identical() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(400.0);
        let mut cfg = toy_config();
        cfg.total_decisions = 800;
        cfg.sync_interval = Some(800); // sync exactly at the end
        let policies = train_per_node(&scenario, &cfg, 2);
        // After a final sync, all actors agree on any observation.
        let obs = vec![0.1f32; policies.policies()[0].adapter().obs_dim()];
        let first = policies.policies()[0].act(&obs);
        for p in policies.policies() {
            assert_eq!(p.act(&obs), first);
        }
    }

    #[test]
    fn independent_training_diverges_across_nodes() {
        let scenario = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(600.0);
        let mut cfg = toy_config();
        cfg.sync_interval = None;
        let policies = train_per_node(&scenario, &cfg, 3);
        assert_eq!(policies.policies()[0].metadata.algorithm, "per-node");
        // Ingress nodes trained; some pair of nodes must disagree
        // somewhere: sample a few observations.
        let dim = policies.policies()[0].adapter().obs_dim();
        let mut diverged = false;
        'outer: for t in 0..50 {
            let obs: Vec<f32> = (0..dim)
                .map(|i| ((t * 31 + i * 7) % 19) as f32 / 9.5 - 1.0)
                .collect();
            let first = policies.policies()[0].act(&obs);
            for p in &policies.policies()[1..] {
                if p.act(&obs) != first {
                    diverged = true;
                    break 'outer;
                }
            }
        }
        assert!(diverged, "independent nets should differ");
    }

    /// `fed_avg` computes the exact equal-weight parameter mean: every
    /// learner ends with (numerically) the element-wise average of all
    /// actors/critics, and all learners end bitwise-identical.
    #[test]
    fn fed_avg_averages_parameters_exactly() {
        let cfg = FederatedConfig {
            hidden: [4, 4],
            ..FederatedConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut learners: Vec<NodeLearner> =
            (0..3).map(|_| NodeLearner::new(3, 2, &cfg, &mut rng)).collect();
        let n = learners.len() as f32;
        let mut expected_actor = vec![0.0f32; learners[0].actor.flat_params().len()];
        let mut expected_critic = vec![0.0f32; learners[0].critic.flat_params().len()];
        for l in &learners {
            for (e, p) in expected_actor.iter_mut().zip(l.actor.flat_params()) {
                *e += p / n;
            }
            for (e, p) in expected_critic.iter_mut().zip(l.critic.flat_params()) {
                *e += p / n;
            }
        }
        fed_avg(&mut learners);
        for (e, p) in expected_actor.iter().zip(learners[0].actor.flat_params()) {
            assert!((e - p).abs() < 1e-5, "actor mean off: {e} vs {p}");
        }
        for (e, p) in expected_critic.iter().zip(learners[0].critic.flat_params()) {
            assert!((e - p).abs() < 1e-5, "critic mean off: {e} vs {p}");
        }
        for l in &learners[1..] {
            assert_eq!(l.actor.flat_params(), learners[0].actor.flat_params());
            assert_eq!(l.critic.flat_params(), learners[0].critic.flat_params());
        }
    }

    /// A sync landing exactly on the final decision leaves every node with
    /// bitwise-identical parameters (stronger than agreeing actions).
    #[test]
    fn end_sync_makes_parameters_bitwise_identical() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(400.0);
        let mut cfg = toy_config();
        cfg.total_decisions = 600;
        cfg.sync_interval = Some(600);
        let policies = train_per_node(&scenario, &cfg, 5);
        let first = policies.policies()[0].actor().flat_params();
        for p in &policies.policies()[1..] {
            assert_eq!(p.actor().flat_params(), first);
        }
    }

    /// Without a sync interval the nodes never exchange parameters: their
    /// networks stay pairwise different.
    #[test]
    fn no_sync_interval_leaves_parameters_independent() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(400.0);
        let mut cfg = toy_config();
        cfg.total_decisions = 600;
        cfg.sync_interval = None;
        let policies = train_per_node(&scenario, &cfg, 5);
        let first = policies.policies()[0].actor().flat_params();
        assert!(
            policies.policies()[1..]
                .iter()
                .all(|p| p.actor().flat_params() != first),
            "independently trained/initialized nodes must not share parameters"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node policy")]
    fn rejects_empty_policy_list() {
        PerNodePolicies::new(vec![]);
    }
}
