//! Evaluation runs: deploy a policy distributedly and measure the paper's
//! success-ratio objective.

use crate::policy::{CoordinationPolicy, DistributedAgents};
use dosco_simnet::{ChurnTimeline, EventLog, Metrics, ScenarioConfig, SimEvent, Simulation};

/// Runs one full episode of `scenario` with `policy` deployed at every
/// node (greedy, fully distributed inference) and returns the metrics.
///
/// # Panics
///
/// Panics if the scenario is invalid or the policy's padded degree is
/// smaller than the scenario topology's network degree.
pub fn evaluate(policy: &CoordinationPolicy, scenario: &ScenarioConfig, seed: u64) -> Metrics {
    let mut agents = DistributedAgents::deploy(policy, scenario.topology.num_nodes());
    let mut sim = Simulation::new(scenario.clone(), seed);
    sim.run(&mut agents).clone()
}

/// Like [`evaluate`], but on a churning substrate: the compiled fault
/// `timeline` is injected into the episode, and the full event stream is
/// returned alongside the metrics so callers can build a resilience
/// report (`dosco_chaos::resilience_report`) around the fault windows.
///
/// # Panics
///
/// Panics under the same conditions as [`evaluate`].
pub fn evaluate_under_churn(
    policy: &CoordinationPolicy,
    scenario: &ScenarioConfig,
    seed: u64,
    timeline: ChurnTimeline,
) -> (Metrics, Vec<SimEvent>) {
    let agents = DistributedAgents::deploy(policy, scenario.topology.num_nodes());
    let mut log = EventLog::new(agents);
    let mut sim = Simulation::with_churn(scenario.clone(), seed, timeline);
    let metrics = sim.run(&mut log).clone();
    (metrics, log.into_events())
}

/// Like [`evaluate`], but first re-draws the random capacity assignment
/// from `seed` (nodes U(0,2), links U(1,5)) — one sample of the paper's
/// random-seed evaluation protocol, and the counterpart of the training
/// environment's per-episode capacity resampling.
pub fn evaluate_with_capacity_draw(
    policy: &CoordinationPolicy,
    scenario: &ScenarioConfig,
    seed: u64,
) -> Metrics {
    let mut scenario = scenario.clone();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xCAB5);
    scenario
        .topology
        .assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
    evaluate(policy, &scenario, seed)
}

/// Evaluates over several seeds and returns `(mean, std)` of the success
/// ratio, plus the per-seed metrics — the aggregation used in every figure
/// of Sec. V ("mean and standard deviation over 30 random seeds").
///
/// Episodes where no flow terminated (the objective is undefined) are
/// *skipped* in the mean/std rather than counted as perfect 1.0, so short
/// or empty episodes cannot inflate the aggregate. If every episode is
/// vacuous, mean and std are `NaN` — "no data", distinguishable from a
/// genuinely perfect 1.0. The returned metrics still cover all seeds.
///
/// # Panics
///
/// Panics if `seeds` is empty (see [`evaluate`] for the other cases).
pub fn evaluate_seeds(
    policy: &CoordinationPolicy,
    scenario: &ScenarioConfig,
    seeds: &[u64],
) -> (f64, f64, Vec<Metrics>) {
    assert!(!seeds.is_empty(), "need at least one evaluation seed");
    let metrics: Vec<Metrics> = seeds
        .iter()
        .map(|&s| evaluate(policy, scenario, s))
        .collect();
    let ratios: Vec<f64> = metrics
        .iter()
        .filter_map(Metrics::success_ratio_opt)
        .collect();
    if ratios.is_empty() {
        return (f64::NAN, f64::NAN, metrics);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let var = ratios
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f64>()
        / ratios.len() as f64;
    (mean, var.sqrt(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyMetadata;
    use dosco_nn::{Activation, Mlp};
    use rand::SeedableRng;

    fn random_policy(degree: usize, seed: u64) -> CoordinationPolicy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &[4 * degree + 4, 8, degree + 1],
            Activation::Tanh,
            &mut rng,
        );
        CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = random_policy(3, 1);
        let scenario = ScenarioConfig::paper_base(2).with_horizon(400.0);
        let a = evaluate(&p, &scenario, 9);
        let b = evaluate(&p, &scenario, 9);
        assert_eq!(a, b);
        assert!(a.arrived > 0);
    }

    #[test]
    fn seed_aggregation_statistics() {
        let p = random_policy(3, 1);
        let scenario = ScenarioConfig::paper_base(1)
            .with_pattern(dosco_traffic::ArrivalPattern::paper_poisson())
            .with_horizon(400.0);
        let (mean, std, metrics) = evaluate_seeds(&p, &scenario, &[1, 2, 3, 4]);
        assert_eq!(metrics.len(), 4);
        assert!((0.0..=1.0).contains(&mean));
        assert!(std >= 0.0);
        // Mean really is the mean of the per-seed ratios.
        let expect: f64 =
            metrics.iter().map(Metrics::success_ratio).sum::<f64>() / 4.0;
        assert!((mean - expect).abs() < 1e-12);
    }

    /// Vacuous episodes (no flow terminated) must not count as perfect:
    /// with a horizon shorter than the first fixed arrival, every episode
    /// is vacuous and the aggregate is NaN — not an inflated 1.0.
    #[test]
    fn vacuous_episodes_do_not_inflate_the_mean() {
        let p = random_policy(3, 1);
        let scenario = ScenarioConfig::paper_base(1).with_horizon(5.0);
        let (mean, std, metrics) = evaluate_seeds(&p, &scenario, &[1, 2]);
        assert_eq!(metrics.len(), 2);
        assert!(
            metrics.iter().all(|m| m.success_ratio_opt().is_none()),
            "expected all-vacuous episodes at horizon 5.0"
        );
        assert!(mean.is_nan(), "all-vacuous mean must be NaN, got {mean}");
        assert!(std.is_nan());
    }

    #[test]
    #[should_panic(expected = "at least one evaluation seed")]
    fn rejects_empty_seed_list() {
        let p = random_policy(3, 1);
        let scenario = ScenarioConfig::paper_base(1);
        evaluate_seeds(&p, &scenario, &[]);
    }
}
