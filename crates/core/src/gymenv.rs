//! Gym-style environment adapter over the network simulator (Fig. 5).
//!
//! One RL step = one flow decision somewhere in the network. Rewards of
//! all events since the previous decision are credited to the previous
//! action (Alg. 1 ln. 6-7): the training loop treats the sequence of
//! decisions — across flows and nodes — as a single trajectory for the
//! shared policy.

use crate::observe::ObservationAdapter;
use crate::reward::RewardConfig;
use dosco_chaos::ChurnSchedule;
use dosco_rl::env::{Env, StepResult};
use dosco_simnet::{Action, ScenarioConfig, SimEvent, Simulation};

/// The training environment: a simulated episode of the scenario, exposing
/// flow decisions as RL steps.
///
/// Episodes restart automatically with a fresh simulator seed (derived
/// from the env's base seed and the episode counter), so parallel env
/// copies see diverse traffic.
#[derive(Debug)]
pub struct CoordEnv {
    scenario: ScenarioConfig,
    adapter: ObservationAdapter,
    reward: RewardConfig,
    sim: Simulation,
    base_seed: u64,
    episode: u64,
    /// Reward accumulated by events since the last step's action.
    diameter: f64,
    /// Recycled buffer for per-step event drains: one allocation for the
    /// env's lifetime instead of one per step.
    events_buf: Vec<SimEvent>,
    /// Re-draw node/link capacities each episode (curriculum over
    /// scenario draws; harder but matches the seeded evaluation protocol).
    resample_capacities: bool,
    /// Substrate churn injected into every episode; `None` trains on a
    /// static substrate (bit-identical to the pre-churn environment).
    churn: Option<ChurnSchedule>,
}

impl CoordEnv {
    /// Creates an environment for `scenario`. The observation adapter is
    /// padded to the scenario topology's network degree unless
    /// `degree_override` asks for more (useful when a policy must transfer
    /// across topologies of different degree).
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid or the override is smaller than
    /// the topology's degree.
    pub fn new(
        scenario: ScenarioConfig,
        reward: RewardConfig,
        base_seed: u64,
        degree_override: Option<usize>,
    ) -> Self {
        let topo_degree = scenario.topology.network_degree();
        let degree = degree_override.unwrap_or(topo_degree);
        assert!(
            degree >= topo_degree,
            "degree override {degree} below topology degree {topo_degree}"
        );
        let sim = Simulation::new(scenario.clone(), base_seed);
        let diameter = sim.diameter();
        CoordEnv {
            scenario,
            adapter: ObservationAdapter::new(degree),
            reward,
            sim,
            base_seed,
            episode: 0,
            diameter,
            events_buf: Vec::new(),
            resample_capacities: true,
            churn: None,
        }
    }

    /// Disables the per-episode capacity re-draw: every episode uses the
    /// scenario's canonical capacities. Narrows the training distribution
    /// (easier to learn, weaker transfer across scenario draws).
    pub fn with_fixed_capacities(mut self) -> Self {
        self.resample_capacities = false;
        self
    }

    /// Injects substrate churn into every episode: the schedule is
    /// recompiled per episode with a seed derived from the episode seed,
    /// so stochastic churn varies across episodes exactly like traffic
    /// does. [`ChurnSchedule::none`] leaves the environment bit-identical
    /// to a churn-free one.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not validate against the scenario
    /// topology (see [`dosco_chaos::ChurnError`]); catching this at
    /// construction keeps the training loop itself infallible.
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        if let Err(e) = churn.compile(&self.scenario.topology, self.scenario.horizon, 0) {
            panic!("invalid churn schedule: {e}");
        }
        self.churn = Some(churn);
        self
    }

    /// Churn statistics of the current episode (`None` on a static
    /// substrate or before the first churn-enabled reset).
    pub fn churn_stats(&self) -> Option<&dosco_simnet::ChurnStats> {
        self.sim.churn_stats()
    }

    /// The observation adapter in use.
    pub fn adapter(&self) -> &ObservationAdapter {
        &self.adapter
    }

    /// Metrics of the current (possibly running) episode.
    pub fn metrics(&self) -> &dosco_simnet::Metrics {
        self.sim.metrics()
    }

    fn fresh_sim(&mut self) -> Vec<f32> {
        self.episode += 1;
        // Spread episode seeds deterministically.
        let seed = self
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.episode);
        // Re-draw the random capacity assignment each episode so the
        // learned policy generalizes over scenario draws, matching the
        // evaluation protocol (mean over random seeds incl. capacities).
        let mut scenario = self.scenario.clone();
        if self.resample_capacities {
            let mut rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xCAB5);
            scenario
                .topology
                .assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
        }
        self.sim = match &self.churn {
            Some(schedule) => {
                // A distinct stream from the traffic/capacity seeds, so
                // enabling churn never perturbs arrivals or capacities.
                let timeline = schedule
                    .compile(&scenario.topology, scenario.horizon, seed ^ 0xC0A5)
                    .expect("schedule validated in with_churn");
                Simulation::with_churn(scenario, seed, timeline)
            }
            None => Simulation::new(scenario, seed),
        };
        self.sim.drain_events_into(&mut self.events_buf);
        let dp = self
            .sim
            .next_decision()
            .expect("a fresh episode must contain at least one decision");
        self.adapter.observe(&self.sim, &dp)
    }
}

impl Env for CoordEnv {
    fn obs_dim(&self) -> usize {
        self.adapter.obs_dim()
    }

    fn num_actions(&self) -> usize {
        self.adapter.num_actions()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.fresh_sim()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(
            action < self.num_actions(),
            "action {action} outside the {}-action space",
            self.num_actions()
        );
        self.sim.apply(Action::from_index(action));
        match self.sim.next_decision() {
            Some(dp) => {
                self.sim.drain_events_into(&mut self.events_buf);
                let reward = self.reward.batch_reward(&self.events_buf, self.diameter);
                StepResult {
                    obs: self.adapter.observe(&self.sim, &dp),
                    reward,
                    done: false,
                }
            }
            None => {
                self.sim.drain_events_into(&mut self.events_buf);
                let reward = self.reward.batch_reward(&self.events_buf, self.diameter);
                StepResult {
                    obs: self.fresh_sim(),
                    reward,
                    done: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_traffic::ArrivalPattern;
    use rand::Rng;
    use rand::SeedableRng;

    fn env() -> CoordEnv {
        let scenario = dosco_simnet::ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(500.0);
        CoordEnv::new(scenario, RewardConfig::default(), 1, None)
    }

    #[test]
    fn dimensions_match_abilene() {
        let e = env();
        assert_eq!(e.obs_dim(), 16); // Δ_G = 3
        assert_eq!(e.num_actions(), 4);
    }

    #[test]
    fn episodes_roll_over_with_done() {
        let mut e = env();
        let obs = e.reset();
        assert_eq!(obs.len(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut dones = 0;
        for _ in 0..5_000 {
            let a = rng.gen_range(0..e.num_actions());
            let r = e.step(a);
            assert_eq!(r.obs.len(), 16);
            assert!(r.reward.is_finite());
            if r.done {
                dones += 1;
                if dones >= 2 {
                    return; // two full episodes exercised
                }
            }
        }
        panic!("episodes never terminated");
    }

    #[test]
    fn rewards_reflect_events() {
        // Deterministic fixed traffic on a 500-step horizon; every drop
        // through an invalid action yields −10 plus small shaping terms.
        let scenario = dosco_simnet::ScenarioConfig::paper_base(1).with_horizon(200.0);
        let mut e = CoordEnv::new(scenario, RewardConfig::default(), 3, None);
        e.reset();
        // Abilene v1 has 2 neighbors; action 3 is invalid -> drop (-10).
        let r = e.step(3);
        assert!(
            (r.reward - -10.0).abs() < 1.0,
            "expected ~-10 for invalid-action drop, got {}",
            r.reward
        );
    }

    #[test]
    fn degree_override_grows_spaces() {
        let scenario = dosco_simnet::ScenarioConfig::paper_base(1).with_horizon(100.0);
        let e = CoordEnv::new(scenario, RewardConfig::default(), 1, Some(7));
        assert_eq!(e.obs_dim(), 32);
        assert_eq!(e.num_actions(), 8);
    }

    #[test]
    #[should_panic(expected = "below topology degree")]
    fn rejects_small_override() {
        let scenario = dosco_simnet::ScenarioConfig::paper_base(1);
        CoordEnv::new(scenario, RewardConfig::default(), 1, Some(2));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_action() {
        let mut e = env();
        e.reset();
        e.step(99);
    }

    #[test]
    fn empty_churn_schedule_is_identical() {
        let run = |mut e: CoordEnv| {
            let mut out = vec![(e.reset(), 0.0)];
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for _ in 0..500 {
                let a = rng.gen_range(0..e.num_actions());
                let r = e.step(a);
                out.push((r.obs, r.reward));
            }
            out
        };
        assert_eq!(run(env()), run(env().with_churn(ChurnSchedule::none())));
    }

    #[test]
    fn churn_episodes_run_and_expose_stats() {
        use dosco_chaos::StochasticChurn;
        let schedule = ChurnSchedule::none()
            .at(100.0, dosco_chaos::ChurnAction::LinkDown(dosco_topology::LinkId(0)))
            .at(200.0, dosco_chaos::ChurnAction::LinkUp(dosco_topology::LinkId(0)))
            .with_stochastic(StochasticChurn::default().with_node_failures(2_000.0, 100.0));
        let mut e = env().with_churn(schedule);
        assert!(e.churn_stats().is_none(), "pre-reset sim is churn-free");
        e.reset();
        let stats = *e.churn_stats().expect("churn installed on reset");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut saw_done = false;
        for _ in 0..5_000 {
            let a = rng.gen_range(0..e.num_actions());
            let r = e.step(a);
            assert!(r.reward.is_finite());
            if r.done {
                saw_done = true;
                break;
            }
        }
        assert!(saw_done, "churn episode must still terminate");
        let _ = stats;
    }

    #[test]
    #[should_panic(expected = "invalid churn schedule")]
    fn rejects_bad_churn_schedule() {
        // Abilene has 14 links; link 99 is out of range.
        let schedule = ChurnSchedule::none().at(
            1.0,
            dosco_chaos::ChurnAction::LinkDown(dosco_topology::LinkId(99)),
        );
        let _ = env().with_churn(schedule);
    }
}
