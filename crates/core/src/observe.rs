//! The POMDP observation adapter (Sec. IV-B1).
//!
//! Each agent observes only the incoming flow, its own node, and its
//! direct neighbors. All components are normalized to `[-1, 1]` (or
//! `[0, 1]`) and padded with dummy entries (−1) to the network degree
//! `Δ_G`, so observation and action spaces have identical size at every
//! node and experience from all agents can train one shared network.
//!
//! Layout (dimension `4·Δ_G + 4`):
//!
//! | slice | size | content |
//! |---|---|---|
//! | `F_f` | 2 | chain progress `p̂_f`, remaining deadline fraction `τ̂_f` |
//! | `R^L` | `Δ_G` | free outgoing-link rate minus `λ_f`, normalized |
//! | `R^V` | `Δ_G + 1` | free compute (self, then neighbors) minus `r_c(λ_f)`, normalized |
//! | `D` | `Δ_G` | slack of shortest-path delay to egress via each neighbor |
//! | `X` | `Δ_G + 1` | instance of `c_f` available (self, then neighbors) |

use dosco_simnet::{DecisionPoint, Simulation};

/// Builds observation vectors for DRL agents from local simulator state.
///
/// The adapter is stateless apart from the network degree it was sized
/// for; one instance serves every node (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservationAdapter {
    degree: usize,
}

impl ObservationAdapter {
    /// Creates an adapter padded to network degree `degree` (usually
    /// [`dosco_topology::Topology::network_degree`] of the training
    /// topology; a larger value allows transfer to denser networks).
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "network degree must be positive");
        ObservationAdapter { degree }
    }

    /// The padded network degree `Δ_G`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Observation vector length: `4·Δ_G + 4`.
    pub fn obs_dim(&self) -> usize {
        4 * self.degree + 4
    }

    /// Action space size: `Δ_G + 1` (local + one per possible neighbor).
    pub fn num_actions(&self) -> usize {
        self.degree + 1
    }

    /// Builds the observation for a pending decision.
    ///
    /// # Panics
    ///
    /// Panics if the node's degree exceeds the adapter's padding degree,
    /// or if the decision's flow is no longer live.
    pub fn observe(&self, sim: &Simulation, dp: &DecisionPoint) -> Vec<f32> {
        let flow = sim
            .flow(dp.flow)
            .expect("decision points refer to live flows");
        let topo = sim.topology();
        let neighbors = topo.neighbors(dp.node);
        assert!(
            neighbors.len() <= self.degree,
            "node {} has {} neighbors, adapter padded to {}",
            dp.node,
            neighbors.len(),
            self.degree
        );
        let mut obs = Vec::with_capacity(self.obs_dim());

        // --- F_f: flow attributes (Sec. IV-B1a).
        obs.push(flow.progress() as f32);
        obs.push(flow.remaining_fraction(dp.time) as f32);

        // --- R^L: link utilization (Sec. IV-B1b). Free rate minus λ_f,
        // normalized by the max outgoing link capacity; ≥ 0 iff the link
        // can carry the flow.
        let max_link_cap = topo.max_outgoing_link_capacity(dp.node).max(1e-12);
        for &(_, l) in neighbors {
            let v = (sim.link_free(l) - flow.rate) / max_link_cap;
            obs.push(clamp1(v));
        }
        for _ in neighbors.len()..self.degree {
            obs.push(-1.0);
        }

        // --- R^V: node utilization (Sec. IV-B1c). Free compute minus
        // r_{c_f}(λ_f), normalized by the max capacity over *all* nodes so
        // agents can spot high-absolute-capacity neighbors.
        let demand = sim.requested_resources(dp.flow);
        let max_node_cap = topo.max_node_capacity().max(1e-12);
        obs.push(clamp1((sim.node_free(dp.node) - demand) / max_node_cap));
        for &(n, _) in neighbors {
            obs.push(clamp1((sim.node_free(n) - demand) / max_node_cap));
        }
        for _ in neighbors.len()..self.degree {
            obs.push(-1.0);
        }

        // --- D: delays to egress (Sec. IV-B1d). Slack of the shortest
        // path via each neighbor relative to the remaining deadline; < 0
        // means forwarding that way cannot succeed anymore.
        let remaining = flow.remaining_time(dp.time);
        // `shortest_paths` and `link_delay` track the current topology
        // version under substrate churn (recomputed only at churn epochs),
        // so the slack below never reads a stale path through a dead link.
        let sp = sim.shortest_paths();
        for &(n, l) in neighbors {
            let path_delay = sim.link_delay(l) + sp.delay(n, flow.egress);
            let v = if remaining <= 0.0 {
                -1.0
            } else {
                ((remaining - path_delay) / remaining).max(-1.0)
            };
            obs.push(v as f32);
        }
        for _ in neighbors.len()..self.degree {
            obs.push(-1.0);
        }

        // --- X: available instances of c_f (Sec. IV-B1e); always 0 when
        // the flow is fully processed.
        match dp.component {
            Some(c) => {
                obs.push(if sim.has_instance(dp.node, c) { 1.0 } else { 0.0 });
                for &(n, _) in neighbors {
                    obs.push(if sim.has_instance(n, c) { 1.0 } else { 0.0 });
                }
            }
            None => {
                obs.extend(std::iter::repeat_n(0.0, neighbors.len() + 1));
            }
        }
        for _ in neighbors.len()..self.degree {
            obs.push(-1.0);
        }

        debug_assert_eq!(obs.len(), self.obs_dim());
        obs
    }
}

fn clamp1(v: f64) -> f32 {
    v.clamp(-1.0, 1.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::coordinator::RandomCoordinator;
    use dosco_simnet::{Action, Coordinator, ScenarioConfig, Simulation};
    use dosco_traffic::ArrivalPattern;

    fn sim() -> Simulation {
        let cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(2_000.0);
        Simulation::new(cfg, 42)
    }

    /// Like [`sim`] but with node capacities large enough that local
    /// processing never drops (for tests that need flows to progress).
    fn roomy_sim() -> Simulation {
        let mut cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(2_000.0);
        cfg.topology.scale_capacities(100.0, 1.0);
        Simulation::new(cfg, 42)
    }

    #[test]
    fn dimensions_follow_degree() {
        let a = ObservationAdapter::new(3);
        assert_eq!(a.obs_dim(), 16);
        assert_eq!(a.num_actions(), 4);
        let b = ObservationAdapter::new(20);
        assert_eq!(b.obs_dim(), 84);
        assert_eq!(b.num_actions(), 21);
    }

    #[test]
    fn observations_bounded_and_fixed_size() {
        let mut s = sim();
        let adapter = ObservationAdapter::new(s.network_degree());
        let mut rc = RandomCoordinator::new(1);
        let mut count = 0;
        while let Some(dp) = s.next_decision() {
            let obs = adapter.observe(&s, &dp);
            assert_eq!(obs.len(), adapter.obs_dim());
            for (i, &v) in obs.iter().enumerate() {
                assert!((-1.0..=1.0).contains(&v), "obs[{i}] = {v}");
                assert!(v.is_finite());
            }
            count += 1;
            let a = rc.decide(&s, &dp);
            s.apply(a);
        }
        assert!(count > 100, "exercised {count} decisions");
    }

    #[test]
    fn progress_and_deadline_start_fresh() {
        let mut s = sim();
        let dp = s.next_decision().unwrap();
        let adapter = ObservationAdapter::new(s.network_degree());
        let obs = adapter.observe(&s, &dp);
        // A flow at its ingress: no progress, full deadline budget.
        assert_eq!(obs[0], 0.0);
        assert_eq!(obs[1], 1.0);
    }

    #[test]
    fn progress_increases_after_processing() {
        let mut s = roomy_sim();
        let dp = s.next_decision().unwrap();
        let flow = dp.flow;
        s.apply(Action::Local);
        // Advance until the same flow's next decision (post-processing).
        let adapter = ObservationAdapter::new(s.network_degree());
        while let Some(dp) = s.next_decision() {
            if dp.flow == flow {
                let obs = adapter.observe(&s, &dp);
                assert!((obs[0] - 1.0 / 3.0).abs() < 1e-6, "progress {}", obs[0]);
                assert!(obs[1] < 1.0, "deadline fraction should have decreased");
                return;
            }
            s.apply(Action::Local);
        }
        panic!("flow never reached a second decision");
    }

    #[test]
    fn instance_slot_reflects_placement() {
        let mut s = roomy_sim();
        let dp = s.next_decision().unwrap();
        let adapter = ObservationAdapter::new(s.network_degree());
        let deg = adapter.degree();
        let x_self_idx = 2 + deg + (deg + 1) + deg; // first X slot
        let before = adapter.observe(&s, &dp);
        assert_eq!(before[x_self_idx], 0.0, "no instance placed yet");
        let node = dp.node;
        let comp = dp.component.unwrap();
        s.apply(Action::Local);
        assert!(s.has_instance(node, comp));
        // Find the next decision at the same node for the same component.
        while let Some(dp2) = s.next_decision() {
            if dp2.node == node && dp2.component == Some(comp) {
                let after = adapter.observe(&s, &dp2);
                assert_eq!(after[x_self_idx], 1.0, "instance should be visible");
                return;
            }
            s.apply(Action::Local);
        }
        panic!("no further decision at the ingress node");
    }

    #[test]
    fn dummy_neighbors_are_minus_one() {
        // Several Abilene nodes have 2 neighbors; padded to Δ_G = 3, the
        // last R^L slot at such a node must be the dummy −1. Advance to
        // the first decision at a degree-2 node (which node decides first
        // depends on the arrival RNG stream).
        let mut s = sim();
        let dp = loop {
            let dp = s.next_decision().expect("a degree-2 node decides");
            if s.topology().degree(dp.node) == 2 {
                break dp;
            }
            s.apply(Action::Local);
        };
        let adapter = ObservationAdapter::new(3);
        let obs = adapter.observe(&s, &dp);
        // R^L occupies obs[2..5]; slot for the non-existent 3rd neighbor:
        assert_eq!(obs[4], -1.0);
        // D occupies obs[2 + 3 + 4 .. 2 + 3 + 4 + 3] = obs[9..12].
        assert_eq!(obs[11], -1.0);
        // X occupies obs[12..16]; dummy at the end.
        assert_eq!(obs[15], -1.0);
    }

    #[test]
    #[should_panic(expected = "padded to")]
    fn rejects_too_small_degree() {
        let mut s = sim();
        let dp = s.next_decision().unwrap();
        // All Abilene nodes have ≥ 2 neighbors; a degree-1 adapter must
        // refuse rather than emit wrong shapes.
        let adapter = ObservationAdapter::new(1);
        let _ = adapter.observe(&s, &dp);
    }
}
