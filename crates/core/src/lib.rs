//! Distributed online service coordination using deep reinforcement
//! learning — the paper's primary contribution (Sec. IV).
//!
//! A separate DRL agent sits at every network node and controls each
//! incoming flow locally: process it here (implicitly scaling/placing
//! component instances) or forward it to a neighbor (scheduling +
//! routing). Agents are trained **centrally** — one shared policy learns
//! from the pooled experience of all nodes (Fig. 4a) — and deployed
//! **distributedly**: each node gets a copy of the trained network and
//! decides alone, from local observations only (Fig. 4b).
//!
//! - [`observe`]: the POMDP observation adapter (Sec. IV-B1) — flow
//!   attributes, link/node utilization, delays to egress, and instance
//!   availability, all normalized to `[-1, 1]` and padded to the network
//!   degree `Δ_G`,
//! - [`reward`]: the shaped reward (Sec. IV-B3) — ±10 for
//!   completion/drop, `+1/n_s` per traversed instance, `−d_l/D_G` per
//!   hop, `−1/D_G` per idle hold,
//! - [`gymenv`]: the Gym-style environment adapter over
//!   [`dosco_simnet::Simulation`] (Fig. 5),
//! - [`policy`]: trained, serializable coordination policies and the
//!   distributed per-node agents,
//! - [`train`]: centralized training (ACKTR by default, A2C/PPO as
//!   ablations) over parallel environments and multiple seeds with
//!   best-agent selection (Alg. 1),
//! - [`eval`]: evaluation runs reporting the paper's success-ratio
//!   objective,
//! - [`federated`]: the Sec. IV-C1 design alternative built out — fully
//!   distributed per-node training with optional FedAvg synchronization.
//!
//! # Example: train at toy scale and deploy
//!
//! ```no_run
//! use dosco_core::train::{train_distributed, Algorithm, TrainConfig};
//! use dosco_simnet::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::paper_base(2);
//! let cfg = TrainConfig {
//!     algorithm: Algorithm::Acktr,
//!     total_steps: 20_000,
//!     seeds: vec![0, 1],
//!     ..TrainConfig::default()
//! };
//! let trained = train_distributed(&scenario, &cfg);
//! let metrics = dosco_core::eval::evaluate(&trained.policy, &scenario, 7);
//! println!("success ratio: {:.3}", metrics.success_ratio());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eval;
pub mod federated;
pub mod gymenv;
pub mod observe;
pub mod policy;
pub mod reward;
pub mod train;

pub use gymenv::CoordEnv;
pub use observe::ObservationAdapter;
pub use policy::{per_node_seed, CoordinationPolicy, DistributedAgents};
pub use reward::RewardConfig;
pub use train::{train_distributed, Algorithm, TrainConfig, TrainedPolicy};
