//! A small neural-network substrate for the distributed-DRL service
//! coordination reproduction.
//!
//! The paper trains 2×256 tanh MLPs for actor and critic with the ACKTR
//! algorithm (RMSprop-flavored natural gradient via K-FAC; Sec. IV-C2 and
//! V-A2). The thin Rust ML ecosystem is substituted by this crate (see
//! DESIGN.md §2):
//!
//! - [`matrix`]: dense row-major `f32` matrices with shape-checked ops,
//! - [`linalg`]: damped symmetric inversion (Cholesky, `f64` internally),
//! - [`mlp`]: dense MLPs with manual forward/backward passes,
//! - [`dist`]: categorical policy heads (sampling, entropy, policy-gradient
//!   and Fisher-sampled logit gradients),
//! - [`optim`]: SGD / RMSprop / Adam,
//! - [`kfac`]: Kronecker-factored natural-gradient preconditioning with a
//!   KL trust region (the core of ACKTR),
//! - [`par`]: a persistent worker pool with deterministic data-parallel
//!   primitives (sized by `DOSCO_THREADS`; results are bit-identical for
//!   every thread count),
//! - [`simd`]: runtime-detected AVX2/FMA GEMM micro-kernels behind the
//!   `DOSCO_SIMD` switch (scalar kernels stay the bit-exact reference;
//!   the default `auto` mode only ever picks bit-identical kernels),
//! - [`quant`]: per-row-absmax int8 weight quantization and an
//!   integer-accumulate int8 GEMM for inference-only forwards
//!   ([`quant::QuantizedMlp`]).
//!
//! Models serialize with serde, so trained policies can be copied to every
//! node for distributed inference (Fig. 4b) and shipped as JSON artifacts.
//!
//! # Example
//!
//! ```
//! use dosco_nn::{dist::Categorical, matrix::Matrix, mlp::Mlp};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let actor = Mlp::paper_arch(16, 4, &mut rng); // Δ_G = 3 -> 4 actions
//! let obs = Matrix::zeros(1, 16);
//! let dist = Categorical::new(&actor.forward(&obs));
//! let action = dist.argmax()[0];
//! assert!(action < 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod kfac;
pub mod linalg;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod par;
pub mod quant;
pub mod simd;

pub use dist::Categorical;
pub use kfac::{Kfac, KfacConfig};
pub use matrix::Matrix;
pub use mlp::{Activation, ForwardCache, Gradients, Mlp};
pub use optim::{Adam, Optimizer, RmsProp, Sgd};
pub use quant::{QuantizedMatrix, QuantizedMlp};
pub use simd::GemmKernel;
