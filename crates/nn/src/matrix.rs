//! Dense row-major `f32` matrices: the tensor type of the NN substrate.
//!
//! Kept deliberately small: exactly the operations the MLP, optimizers, and
//! K-FAC need, with shape checks on every operation.

use crate::simd::GemmKernel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use dosco_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A single-row matrix (e.g. one observation).
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `fan_in × fan_out` weight
    /// matrix, suitable for tanh networks (Sec. V-A2 uses tanh).
    pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(r, c)` element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the `(r, c)` element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to `rows × cols` in place, reusing the allocation where
    /// possible; every element is reset to zero. The scratch-buffer
    /// workhorse of the forward/backward passes.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self · other` written into a preallocated `out`
    /// (`self.rows × other.cols`), overwriting its contents. The kernel is
    /// cache-blocked and parallelizes over row blocks of `out` above a
    /// size threshold; each output element accumulates in ascending-`k`
    /// order with a single `f32` accumulator, so the result is
    /// bit-identical to [`Matrix::matmul_ref`] for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        self.matmul_into_with(other, out, crate::simd::active());
    }

    /// [`Matrix::matmul_into`] with an explicitly forced GEMM kernel,
    /// clamped to the best the CPU supports
    /// ([`GemmKernel::best_available`]). Lets benches and equivalence
    /// tests compare scalar/AVX2/FMA in one process regardless of
    /// `DOSCO_SIMD`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_into_with(&self, other: &Matrix, out: &mut Matrix, kernel: GemmKernel) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let _span = dosco_obs::span(dosco_obs::SpanKind::Gemm);
        let kernel = kernel.best_available();
        let (kk, n) = (self.cols, other.cols);
        run_row_blocked(self.rows, kk, n, &mut out.data, |row0, out_block| {
            matmul_block_dispatch(&self.data, &other.data, out_block, row0, kk, n, kernel);
        });
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`).
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ · other` written into a preallocated `out`
    /// (`self.cols × other.cols`), overwriting its contents. Blocked and
    /// row-parallel like [`Matrix::matmul_into`]; bit-identical to
    /// [`Matrix::transpose_matmul_ref`] for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out` has the wrong shape.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "transpose_matmul output shape mismatch"
        );
        self.transpose_matmul_into_with(other, out, crate::simd::active());
    }

    /// [`Matrix::transpose_matmul_into`] with an explicitly forced GEMM
    /// kernel, clamped to the best the CPU supports.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out` has the wrong shape.
    pub fn transpose_matmul_into_with(&self, other: &Matrix, out: &mut Matrix, kernel: GemmKernel) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "transpose_matmul output shape mismatch"
        );
        let _span = dosco_obs::span(dosco_obs::SpanKind::Gemm);
        let kernel = kernel.best_available();
        let (m, kk, n) = (self.cols, self.rows, other.cols);
        run_row_blocked(m, kk, n, &mut out.data, |row0, out_block| {
            transpose_matmul_block_dispatch(
                &self.data,
                &other.data,
                out_block,
                row0,
                m,
                kk,
                n,
                kernel,
            );
        });
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.cols != other.cols`).
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` written into a preallocated `out`
    /// (`self.rows × other.rows`), overwriting its contents. Blocked and
    /// row-parallel like [`Matrix::matmul_into`]; bit-identical to
    /// [`Matrix::matmul_transpose_ref`] for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_transpose output shape mismatch"
        );
        self.matmul_transpose_into_with(other, out, crate::simd::active());
    }

    /// [`Matrix::matmul_transpose_into`] with an explicitly forced GEMM
    /// kernel, clamped to the best the CPU supports. `A·Bᵀ` reduces over
    /// `k`, which SIMD lanes can only speed up by reordering the sum, so
    /// only the (already inexact) FMA kernel vectorizes here —
    /// `Scalar` and `Avx2` both run the scalar kernel and stay
    /// bit-identical to the reference.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_transpose_into_with(&self, other: &Matrix, out: &mut Matrix, kernel: GemmKernel) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_transpose output shape mismatch"
        );
        let _span = dosco_obs::span(dosco_obs::SpanKind::Gemm);
        let kernel = kernel.best_available();
        let (kk, n) = (self.cols, other.rows);
        run_row_blocked(self.rows, kk, n, &mut out.data, |row0, out_block| {
            matmul_transpose_block_dispatch(&self.data, &other.data, out_block, row0, kk, n, kernel);
        });
    }

    /// Reference (naive triple-loop) `self · other`: the specification the
    /// blocked kernel is property-tested against. Accumulates each output
    /// element in ascending-`k` order, with no zero-skip fast path (a
    /// skipped `0 · ∞` or `0 · NaN` would silently drop non-finite
    /// operands instead of propagating them).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference (naive) `selfᵀ · other`; see [`Matrix::matmul_ref`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`).
    pub fn transpose_matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference (naive) `self · otherᵀ`; see [`Matrix::matmul_ref`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.cols != other.cols`).
    pub fn matmul_transpose_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut s = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    s += a * b;
                }
                out.data[i * other.rows + j] = s;
            }
        }
        out
    }

    /// The transpose (blocked copy: both source columns and destination
    /// rows stay cache-resident within a tile).
    pub fn transpose(&self) -> Matrix {
        const TB: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TB) {
            let r1 = (r0 + TB).min(self.rows);
            for c0 in (0..self.cols).step_by(TB) {
                let c1 = (c0 + TB).min(self.cols);
                for r in r0..r1 {
                    let src = &self.data[r * self.cols..(r + 1) * self.cols];
                    for (c, &v) in src.iter().enumerate().take(c1).skip(c0) {
                        out.data[c * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "element-wise op shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Returns `self` scaled by a constant.
    pub fn scaled(&self, scale: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * scale).collect(),
        }
    }

    /// In-place scaling.
    pub fn scale_in_place(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Adds a row vector (e.g. a bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Column sums (length `cols`) — e.g. bias gradients from a batch.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of element-wise products — the Frobenius inner product
    /// `⟨self, other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dot shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

/// Rows of `out` processed per parallel chunk. The partition never affects
/// values (each element belongs to exactly one chunk), only load balance.
const ROW_BLOCK: usize = 32;
/// Panel width over the contraction dimension `k`: bounds the slice of the
/// non-output operand kept hot in cache while sweeping a row block.
/// Shared with the SIMD kernels so scalar and vector paths walk the same
/// panels (a precondition for the AVX2 path's bit-identity).
pub(crate) const K_BLOCK: usize = 64;
/// Panel width over output columns: one `f32` panel row is 1 KiB, so a
/// `K_BLOCK × J_BLOCK` panel of `B` stays L2-resident.
pub(crate) const J_BLOCK: usize = 256;
/// Below this many multiply-adds the pool dispatch overhead dominates and
/// the product runs inline on the calling thread.
const PAR_MIN_FLOPS: usize = 1 << 17;

/// Runs `kernel(row0, out_block)` over row blocks of the `m × n` output,
/// in parallel when the product is large enough. Each kernel call owns
/// rows `row0 .. row0 + out_block.len() / n` exclusively.
fn run_row_blocked(
    m: usize,
    kk: usize,
    n: usize,
    out: &mut [f32],
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if n == 0 || m == 0 {
        return;
    }
    if m.saturating_mul(kk).saturating_mul(n) < PAR_MIN_FLOPS {
        kernel(0, out);
        return;
    }
    crate::par::par_chunks_mut(out, ROW_BLOCK * n, |block_idx, out_block| {
        kernel(block_idx * ROW_BLOCK, out_block);
    });
}

/// Output-column width of the register micro-kernel: `MM_JT` accumulators
/// per row fit a couple of SIMD registers, and a full `kk × MM_JT` column
/// panel of `B` (e.g. 512 × 16 f32 = 32 KiB) stays L1/L2-resident while
/// the `k` loop streams it. Shared with the SIMD kernels (two 8-lane
/// vectors per row).
pub(crate) const MM_JT: usize = 16;

/// Register-tiled inner kernel: `RT` rows × (up to) [`MM_JT`] columns of
/// `C`, with the accumulators living in registers for the *entire* `k`
/// loop. Each `B` element is loaded once per `RT` rows — this weight
/// reuse is why a batched forward costs less per row than single-row
/// forwards. Every accumulator is still one `f32` chain over ascending
/// `k`, so the result stays bit-identical to the naive `(i, k, j)` loop.
#[inline(always)]
fn mm_tile<const RT: usize>(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    arow0: usize,
    r: usize,
    kk: usize,
    n: usize,
) {
    let mut j0 = 0;
    // Full-width tiles: fixed trip counts so the accumulator arrays stay
    // in registers and the column loop vectorizes.
    while j0 + MM_JT <= n {
        let mut acc = [[0.0f32; MM_JT]; RT];
        for k in 0..kk {
            let b_seg: &[f32; MM_JT] = b[k * n + j0..k * n + j0 + MM_JT]
                .try_into()
                .expect("tile width");
            for rr in 0..RT {
                let av = a[(arow0 + rr) * kk + k];
                for jj in 0..MM_JT {
                    acc[rr][jj] += av * b_seg[jj];
                }
            }
        }
        for rr in 0..RT {
            out_block[(r + rr) * n + j0..(r + rr) * n + j0 + MM_JT].copy_from_slice(&acc[rr]);
        }
        j0 += MM_JT;
    }
    // Column remainder (n % MM_JT), same accumulation order.
    if j0 < n {
        let jt = n - j0;
        let mut acc = [[0.0f32; MM_JT]; RT];
        for k in 0..kk {
            let b_seg = &b[k * n + j0..k * n + j0 + jt];
            for rr in 0..RT {
                let av = a[(arow0 + rr) * kk + k];
                for (x, &bv) in acc[rr][..jt].iter_mut().zip(b_seg) {
                    *x += av * bv;
                }
            }
        }
        for rr in 0..RT {
            out_block[(r + rr) * n + j0..(r + rr) * n + j0 + jt]
                .copy_from_slice(&acc[rr][..jt]);
        }
    }
}

/// `C[row0.., :] = A[row0.., :] · B` for `out_block.len() / n` rows.
/// Register-tiled over 4/2/1-row panels ([`mm_tile`]); per element the
/// accumulation is a single `f32` chain over ascending `k`, identical to
/// the naive `(i, k, j)` loop — blocked vs naive vs any batch split is
/// bit-identical.
fn matmul_block(a: &[f32], b: &[f32], out_block: &mut [f32], row0: usize, kk: usize, n: usize) {
    let rows = out_block.len() / n;
    let mut r = 0;
    while r + 4 <= rows {
        mm_tile::<4>(a, b, out_block, row0 + r, r, kk, n);
        r += 4;
    }
    if r + 2 <= rows {
        mm_tile::<2>(a, b, out_block, row0 + r, r, kk, n);
        r += 2;
    }
    if r < rows {
        mm_tile::<1>(a, b, out_block, row0 + r, r, kk, n);
    }
}

/// `C[row0.., :] = (Aᵀ)[row0.., :] · B` where `A` is `kk × m` (so row `i`
/// of `C` reads column `i` of `A`). Same ascending-`k` per-element order
/// as the naive `k`-outer loop.
fn transpose_matmul_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    row0: usize,
    m: usize,
    kk: usize,
    n: usize,
) {
    out_block.fill(0.0);
    let rows = out_block.len() / n;
    for k0 in (0..kk).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(kk);
        for j0 in (0..n).step_by(J_BLOCK) {
            let j1 = (j0 + J_BLOCK).min(n);
            for r in 0..rows {
                let i = row0 + r;
                let out_seg = &mut out_block[r * n + j0..r * n + j1];
                for k in k0..k1 {
                    let av = a[k * m + i];
                    let b_seg = &b[k * n + j0..k * n + j1];
                    for (o, &bv) in out_seg.iter_mut().zip(b_seg) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// `C[row0.., :] = A[row0.., :] · Bᵀ` where `B` is `n × kk`: blocked dot
/// products, four output columns at a time. Each output element keeps its
/// own single accumulator advancing in ascending `k`, so the unroll only
/// interleaves *independent* dependency chains (≈2× on long `k`) and every
/// element stays bit-identical to the one-at-a-time naive dot.
fn matmul_transpose_block(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    row0: usize,
    kk: usize,
    n: usize,
) {
    let rows = out_block.len() / n;
    for j0 in (0..n).step_by(ROW_BLOCK) {
        let j1 = (j0 + ROW_BLOCK).min(n);
        for r in 0..rows {
            let a_row = &a[(row0 + r) * kk..(row0 + r) * kk + kk];
            let mut j = j0;
            while j + 4 <= j1 {
                let b0 = &b[j * kk..(j + 1) * kk];
                let b1 = &b[(j + 1) * kk..(j + 2) * kk];
                let b2 = &b[(j + 2) * kk..(j + 3) * kk];
                let b3 = &b[(j + 3) * kk..(j + 4) * kk];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (k, &av) in a_row.iter().enumerate() {
                    s0 += av * b0[k];
                    s1 += av * b1[k];
                    s2 += av * b2[k];
                    s3 += av * b3[k];
                }
                out_block[r * n + j] = s0;
                out_block[r * n + j + 1] = s1;
                out_block[r * n + j + 2] = s2;
                out_block[r * n + j + 3] = s3;
                j += 4;
            }
            while j < j1 {
                let b_row = &b[j * kk..(j + 1) * kk];
                let mut s = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    s += av * bv;
                }
                out_block[r * n + j] = s;
                j += 1;
            }
        }
    }
}

/// Routes one `matmul` row block to the scalar or SIMD kernel. The
/// kernel arrives pre-clamped by [`GemmKernel::best_available`], so the
/// SIMD arms are only reachable when the CPU supports them (re-asserted
/// inside `simd::x86`).
fn matmul_block_dispatch(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    row0: usize,
    kk: usize,
    n: usize,
    kernel: GemmKernel,
) {
    match kernel {
        GemmKernel::Scalar => matmul_block(a, b, out_block, row0, kk, n),
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Avx2 => crate::simd::x86::run_matmul_block(false, a, b, out_block, row0, kk, n),
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Fma => crate::simd::x86::run_matmul_block(true, a, b, out_block, row0, kk, n),
        #[cfg(not(target_arch = "x86_64"))]
        _ => matmul_block(a, b, out_block, row0, kk, n),
    }
}

/// Routes one `transpose_matmul` row block (see [`matmul_block_dispatch`]).
#[allow(clippy::too_many_arguments)]
fn transpose_matmul_block_dispatch(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    row0: usize,
    m: usize,
    kk: usize,
    n: usize,
    kernel: GemmKernel,
) {
    match kernel {
        GemmKernel::Scalar => transpose_matmul_block(a, b, out_block, row0, m, kk, n),
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Avx2 => {
            crate::simd::x86::run_transpose_matmul_block(false, a, b, out_block, row0, m, kk, n)
        }
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Fma => {
            crate::simd::x86::run_transpose_matmul_block(true, a, b, out_block, row0, m, kk, n)
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => transpose_matmul_block(a, b, out_block, row0, m, kk, n),
    }
}

/// Routes one `matmul_transpose` row block. Only the FMA kernel
/// vectorizes this shape (`k`-reduction); `Scalar` *and* `Avx2` take the
/// scalar kernel so both stay bit-identical to the reference.
fn matmul_transpose_block_dispatch(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    row0: usize,
    kk: usize,
    n: usize,
    kernel: GemmKernel,
) {
    match kernel {
        GemmKernel::Scalar | GemmKernel::Avx2 => {
            matmul_transpose_block(a, b, out_block, row0, kk, n)
        }
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Fma => {
            crate::simd::x86::run_matmul_transpose_block(a, b, out_block, row0, kk, n)
        }
        #[cfg(not(target_arch = "x86_64"))]
        GemmKernel::Fma => matmul_transpose_block(a, b, out_block, row0, kk, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transpose_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_scaled_and_broadcast() {
        let mut a = Matrix::zeros(2, 2);
        a.add_scaled(&Matrix::identity(2), 3.0);
        assert_eq!(a.get(0, 0), 3.0);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.row(0), &[4.0, 2.0]);
        assert_eq!(a.row(1), &[1.0, 5.0]);
    }

    #[test]
    fn column_sums_and_dot() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
        assert_eq!(a.dot(&a), 1.0 + 4.0 + 9.0 + 16.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn xavier_within_limit_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier_uniform(16, 256, &mut rng);
        let limit = (6.0f32 / (16.0 + 256.0)).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(m, Matrix::xavier_uniform(16, 256, &mut rng2));
    }

    #[test]
    fn map_and_row_access() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]).map(f32::abs);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let mut m = m;
        m.row_mut(0)[1] = 7.0;
        assert_eq!(m.get(0, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<Matrix>(&json).unwrap(), m);
    }
}
