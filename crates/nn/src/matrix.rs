//! Dense row-major `f32` matrices: the tensor type of the NN substrate.
//!
//! Kept deliberately small: exactly the operations the MLP, optimizers, and
//! K-FAC need, with shape checks on every operation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use dosco_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A single-row matrix (e.g. one observation).
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `fan_in × fan_out` weight
    /// matrix, suitable for tanh networks (Sec. V-A2 uses tanh).
    pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(r, c)` element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the `(r, c)` element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`).
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.cols != other.cols`).
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut s = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    s += a * b;
                }
                out.data[i * other.rows + j] = s;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "element-wise op shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Returns `self` scaled by a constant.
    pub fn scaled(&self, scale: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * scale).collect(),
        }
    }

    /// In-place scaling.
    pub fn scale_in_place(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Adds a row vector (e.g. a bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Column sums (length `cols`) — e.g. bias gradients from a batch.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of element-wise products — the Frobenius inner product
    /// `⟨self, other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dot shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_matmul_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transpose_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_scaled_and_broadcast() {
        let mut a = Matrix::zeros(2, 2);
        a.add_scaled(&Matrix::identity(2), 3.0);
        assert_eq!(a.get(0, 0), 3.0);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.row(0), &[4.0, 2.0]);
        assert_eq!(a.row(1), &[1.0, 5.0]);
    }

    #[test]
    fn column_sums_and_dot() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
        assert_eq!(a.dot(&a), 1.0 + 4.0 + 9.0 + 16.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn xavier_within_limit_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier_uniform(16, 256, &mut rng);
        let limit = (6.0f32 / (16.0 + 256.0)).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(m, Matrix::xavier_uniform(16, 256, &mut rng2));
    }

    #[test]
    fn map_and_row_access() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]).map(f32::abs);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let mut m = m;
        m.row_mut(0)[1] = 7.0;
        assert_eq!(m.get(0, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<Matrix>(&json).unwrap(), m);
    }
}
