//! Runtime-dispatched `std::arch` SIMD micro-kernels for the GEMM hot path.
//!
//! The scalar register-tiled kernels in [`crate::matrix`] remain the
//! bit-exact reference path; this module adds AVX2 and AVX2+FMA variants
//! selected at runtime via [`is_x86_feature_detected!`] and the
//! `DOSCO_SIMD` environment switch:
//!
//! | `DOSCO_SIMD`            | kernel                         | numerics vs scalar        |
//! |-------------------------|--------------------------------|---------------------------|
//! | `off` / `0` / `scalar`  | [`GemmKernel::Scalar`]         | reference                 |
//! | `avx2`                  | [`GemmKernel::Avx2`]           | **bit-identical**         |
//! | `fma` / `on` / `1`      | [`GemmKernel::Fma`]            | deterministic, not bitwise|
//! | unset / `auto`          | best **bit-identical** kernel  | bit-identical             |
//!
//! The AVX2 kernels vectorize across *independent output columns* with
//! separate multiply and add steps, so every output element keeps exactly
//! the scalar kernel's single ascending-`k` `f32` accumulator chain —
//! bit-identical by construction, which is why `auto` may select them
//! without breaking the workspace's golden traces or equivalence suites.
//! The FMA kernels fuse multiply-add with a single rounding per step:
//! still fully deterministic (fixed order, batch-split invariant), but
//! not bit-comparable to scalar, so they run only when explicitly
//! requested. `A·Bᵀ` (`matmul_transpose`) reduces over `k`; lane-parallel
//! reduction inherently reorders the sum, so that kernel gets a SIMD
//! variant only in FMA mode and stays scalar otherwise.
//!
//! Requesting a kernel the CPU lacks silently falls back to the best
//! available one ([`GemmKernel::best_available`]); an unparseable
//! `DOSCO_SIMD` value panics, mirroring `DOSCO_THREADS`.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::OnceLock;

/// Which GEMM micro-kernel family executes the f32 hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Portable register-tiled scalar kernels: the bit-exact reference.
    Scalar,
    /// AVX2 kernels with separate multiply and add rounding steps;
    /// bit-identical to [`GemmKernel::Scalar`] by construction.
    Avx2,
    /// AVX2+FMA kernels (fused multiply-add, one rounding per step);
    /// deterministic but **not** bit-identical to scalar.
    Fma,
}

impl GemmKernel {
    /// Whether this kernel produces bit-identical results to the scalar
    /// reference path. Tests use this to decide between bitwise and
    /// tolerance-based assertions.
    pub fn bit_exact(self) -> bool {
        !matches!(self, GemmKernel::Fma)
    }

    /// Whether the running CPU can execute this kernel.
    pub fn is_available(self) -> bool {
        match self {
            GemmKernel::Scalar => true,
            GemmKernel::Avx2 => avx2_available(),
            GemmKernel::Fma => fma_available(),
        }
    }

    /// This kernel if the CPU supports it, else the fastest supported
    /// downgrade (`Fma → Avx2 → Scalar`). Every dispatch site clamps
    /// through this, so a forced kernel is portable.
    pub fn best_available(self) -> GemmKernel {
        match self {
            GemmKernel::Scalar => GemmKernel::Scalar,
            GemmKernel::Avx2 => {
                if avx2_available() {
                    GemmKernel::Avx2
                } else {
                    GemmKernel::Scalar
                }
            }
            GemmKernel::Fma => {
                if fma_available() {
                    GemmKernel::Fma
                } else if avx2_available() {
                    GemmKernel::Avx2
                } else {
                    GemmKernel::Scalar
                }
            }
        }
    }

    /// Stable lowercase name (`scalar` / `avx2` / `fma`) for logs and
    /// bench records.
    pub fn label(self) -> &'static str {
        match self {
            GemmKernel::Scalar => "scalar",
            GemmKernel::Avx2 => "avx2",
            GemmKernel::Fma => "fma",
        }
    }
}

/// True when the running CPU supports the AVX2 kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the running CPU supports the AVX2+FMA kernels.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// What `DOSCO_SIMD` asked for, before clamping to CPU support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Requested {
    Auto,
    Off,
    Avx2,
    Fma,
}

/// Parses a raw `DOSCO_SIMD` value. `None`/empty means `Auto`.
fn parse_requested(raw: Option<&str>) -> Result<Requested, String> {
    let v = raw.unwrap_or("").trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "auto" => Ok(Requested::Auto),
        "off" | "0" | "scalar" | "false" => Ok(Requested::Off),
        "avx2" => Ok(Requested::Avx2),
        "fma" | "on" | "1" | "true" => Ok(Requested::Fma),
        other => Err(format!(
            "DOSCO_SIMD must be one of auto|off|scalar|avx2|fma|on|1|0 (got {other:?})"
        )),
    }
}

/// Clamps a request to what the CPU supports. `Auto` selects the best
/// *bit-identical* kernel so default-environment runs keep every golden
/// and bitwise-equivalence contract; FMA is explicit opt-in.
fn resolve(req: Requested) -> GemmKernel {
    match req {
        Requested::Off => GemmKernel::Scalar,
        Requested::Auto | Requested::Avx2 => GemmKernel::Avx2.best_available(),
        Requested::Fma => GemmKernel::Fma.best_available(),
    }
}

/// The process-wide active GEMM kernel: `DOSCO_SIMD` parsed once and
/// clamped to CPU support (see the module docs for the value table).
///
/// # Panics
///
/// Panics on the first call if `DOSCO_SIMD` is set to an unknown value.
pub fn active() -> GemmKernel {
    static ACTIVE: OnceLock<GemmKernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let raw = std::env::var("DOSCO_SIMD").ok();
        let req = parse_requested(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"));
        resolve(req)
    })
}

/// The x86-64 kernel bodies. Everything here mirrors the scalar kernels
/// in `matrix.rs` tile-for-tile; the `run_*` wrappers re-verify CPU
/// support with a real `assert!` so they are safe to call from any
/// context (the check is one cached atomic load, noise next to a GEMM
/// block).
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use crate::matrix::{J_BLOCK, K_BLOCK, MM_JT};
    use core::arch::x86_64::*;

    /// `acc + a·b` with separate rounding steps — matches the scalar
    /// kernels bit-for-bit.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn vmadd_unfused(a: __m256, b: __m256, acc: __m256) -> __m256 {
        _mm256_add_ps(acc, _mm256_mul_ps(a, b))
    }

    /// Fused `a·b + acc`, one rounding step.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    fn vmadd_fused(a: __m256, b: __m256, acc: __m256) -> __m256 {
        _mm256_fmadd_ps(a, b, acc)
    }

    /// Scalar tail op paired with [`vmadd_unfused`].
    #[inline]
    fn smadd_unfused(a: f32, b: f32, acc: f32) -> f32 {
        acc + a * b
    }

    /// Scalar tail op paired with [`vmadd_fused`]: fused like the vector
    /// lanes so the whole FMA kernel rounds once per step.
    #[inline]
    fn smadd_fused(a: f32, b: f32, acc: f32) -> f32 {
        a.mul_add(b, acc)
    }

    /// Expands the `matmul` / `transpose_matmul` kernel pair once per
    /// feature set. A macro (rather than a `const FMA: bool` generic)
    /// keeps each instantiation inside a fn carrying exactly the
    /// `#[target_feature]` set its intrinsics need, so the multiply-add
    /// helpers stay safe calls and inline cleanly.
    macro_rules! define_gemm_kernels {
        ($feat:literal, $vmadd:ident, $smadd:ident,
         $mm_tile:ident, $matmul_block:ident, $tmm_block:ident) => {
            /// `RT` rows × up to [`MM_JT`] columns of `C` with 8-lane
            /// register accumulators; the vector lanes are independent
            /// output columns, so each element keeps one accumulator
            /// chain over ascending `k` exactly like the scalar tile.
            #[target_feature(enable = $feat)]
            fn $mm_tile<const RT: usize>(
                a: &[f32],
                b: &[f32],
                out_block: &mut [f32],
                arow0: usize,
                r: usize,
                kk: usize,
                n: usize,
            ) {
                let mut j0 = 0;
                while j0 + MM_JT <= n {
                    let mut acc = [[_mm256_setzero_ps(); 2]; RT];
                    for k in 0..kk {
                        let bp = b[k * n + j0..k * n + j0 + MM_JT].as_ptr();
                        // SAFETY: the slice above proves MM_JT (=16) f32 are
                        // readable at `bp`; the two unaligned loads cover
                        // lanes 0..8 and 8..16 of it.
                        let (b0, b1) = unsafe { (_mm256_loadu_ps(bp), _mm256_loadu_ps(bp.add(8))) };
                        for rr in 0..RT {
                            let av = _mm256_set1_ps(a[(arow0 + rr) * kk + k]);
                            acc[rr][0] = $vmadd(av, b0, acc[rr][0]);
                            acc[rr][1] = $vmadd(av, b1, acc[rr][1]);
                        }
                    }
                    for rr in 0..RT {
                        let op =
                            out_block[(r + rr) * n + j0..(r + rr) * n + j0 + MM_JT].as_mut_ptr();
                        // SAFETY: the slice above proves MM_JT (=16) f32 of
                        // writable storage at `op`; the two unaligned stores
                        // cover lanes 0..8 and 8..16 of it.
                        unsafe {
                            _mm256_storeu_ps(op, acc[rr][0]);
                            _mm256_storeu_ps(op.add(8), acc[rr][1]);
                        }
                    }
                    j0 += MM_JT;
                }
                // Scalar column remainder (n % MM_JT), same per-element
                // accumulation order as the scalar tile's remainder loop.
                if j0 < n {
                    let jt = n - j0;
                    let mut acc = [[0.0f32; MM_JT]; RT];
                    for k in 0..kk {
                        let b_seg = &b[k * n + j0..k * n + j0 + jt];
                        for rr in 0..RT {
                            let av = a[(arow0 + rr) * kk + k];
                            for (x, &bv) in acc[rr][..jt].iter_mut().zip(b_seg) {
                                *x = $smadd(av, bv, *x);
                            }
                        }
                    }
                    for rr in 0..RT {
                        out_block[(r + rr) * n + j0..(r + rr) * n + j0 + jt]
                            .copy_from_slice(&acc[rr][..jt]);
                    }
                }
            }

            /// `C[row0.., :] = A[row0.., :] · B`: 4/2/1-row tiling
            /// identical to the scalar `matmul_block`.
            #[target_feature(enable = $feat)]
            fn $matmul_block(
                a: &[f32],
                b: &[f32],
                out_block: &mut [f32],
                row0: usize,
                kk: usize,
                n: usize,
            ) {
                let rows = out_block.len() / n;
                let mut r = 0;
                while r + 4 <= rows {
                    $mm_tile::<4>(a, b, out_block, row0 + r, r, kk, n);
                    r += 4;
                }
                if r + 2 <= rows {
                    $mm_tile::<2>(a, b, out_block, row0 + r, r, kk, n);
                    r += 2;
                }
                if r < rows {
                    $mm_tile::<1>(a, b, out_block, row0 + r, r, kk, n);
                }
            }

            /// `C[row0.., :] = (Aᵀ)[row0.., :] · B`: the scalar kernel's
            /// `K_BLOCK × J_BLOCK` panel walk with the elementwise inner
            /// `out[j] += a·b[j]` loop run 8 lanes at a time. Lanes are
            /// independent `j` columns, so per-element order matches the
            /// scalar kernel.
            #[target_feature(enable = $feat)]
            fn $tmm_block(
                a: &[f32],
                b: &[f32],
                out_block: &mut [f32],
                row0: usize,
                m: usize,
                kk: usize,
                n: usize,
            ) {
                out_block.fill(0.0);
                let rows = out_block.len() / n;
                for k0 in (0..kk).step_by(K_BLOCK) {
                    let k1 = (k0 + K_BLOCK).min(kk);
                    for j0 in (0..n).step_by(J_BLOCK) {
                        let j1 = (j0 + J_BLOCK).min(n);
                        let len = j1 - j0;
                        for r in 0..rows {
                            let i = row0 + r;
                            for k in k0..k1 {
                                let avs = a[k * m + i];
                                let av = _mm256_set1_ps(avs);
                                let bp = b[k * n + j0..k * n + j1].as_ptr();
                                let op = out_block[r * n + j0..r * n + j1].as_mut_ptr();
                                let mut j = 0;
                                while j + 8 <= len {
                                    // SAFETY: `j + 8 <= len` keeps both
                                    // 8-lane accesses inside the two
                                    // `len`-long slices taken above.
                                    unsafe {
                                        let o = _mm256_loadu_ps(op.add(j));
                                        let bv = _mm256_loadu_ps(bp.add(j));
                                        _mm256_storeu_ps(op.add(j), $vmadd(av, bv, o));
                                    }
                                    j += 8;
                                }
                                while j < len {
                                    // SAFETY: `j < len` stays inside the
                                    // slices taken above.
                                    unsafe {
                                        *op.add(j) = $smadd(avs, *bp.add(j), *op.add(j));
                                    }
                                    j += 1;
                                }
                            }
                        }
                    }
                }
            }
        };
    }

    define_gemm_kernels!(
        "avx2",
        vmadd_unfused,
        smadd_unfused,
        mm_tile_avx2,
        matmul_block_avx2,
        transpose_matmul_block_avx2
    );
    define_gemm_kernels!(
        "avx2,fma",
        vmadd_fused,
        smadd_fused,
        mm_tile_fma,
        matmul_block_fma,
        transpose_matmul_block_fma
    );

    /// Horizontal sum of 8 lanes: fold high half onto low, then pairwise.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn hsum256(v: __m256) -> f32 {
        let q = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        _mm_cvtss_f32(_mm_add_ss(d, _mm_shuffle_ps::<0b01>(d, d)))
    }

    /// `C[row0.., :] = A[row0.., :] · Bᵀ` with four independent 8-lane FMA
    /// accumulators over `k` per dot product. Lane-parallel reduction
    /// reorders the sum, so this kernel exists only for the (already
    /// inexact) FMA mode; Scalar/Avx2 modes keep the scalar kernel. The
    /// order is still fixed and row-independent, so results stay
    /// deterministic and batch-split invariant, and nothing skips zero
    /// terms (NaN/∞ propagate like the reference).
    #[target_feature(enable = "avx2,fma")]
    fn matmul_transpose_block_fma(
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        row0: usize,
        kk: usize,
        n: usize,
    ) {
        let rows = out_block.len() / n;
        for r in 0..rows {
            let a_row = &a[(row0 + r) * kk..(row0 + r) * kk + kk];
            let ap = a_row.as_ptr();
            for j in 0..n {
                let b_row = &b[j * kk..(j + 1) * kk];
                let bp = b_row.as_ptr();
                let mut acc = [_mm256_setzero_ps(); 4];
                let mut k = 0;
                while k + 32 <= kk {
                    for (l, accl) in acc.iter_mut().enumerate() {
                        // SAFETY: `k + 32 <= kk` bounds all four 8-lane
                        // loads (offsets k..k+32) within both kk-long rows.
                        unsafe {
                            *accl = _mm256_fmadd_ps(
                                _mm256_loadu_ps(ap.add(k + 8 * l)),
                                _mm256_loadu_ps(bp.add(k + 8 * l)),
                                *accl,
                            );
                        }
                    }
                    k += 32;
                }
                while k + 8 <= kk {
                    // SAFETY: `k + 8 <= kk` bounds both 8-lane loads.
                    unsafe {
                        acc[0] = _mm256_fmadd_ps(
                            _mm256_loadu_ps(ap.add(k)),
                            _mm256_loadu_ps(bp.add(k)),
                            acc[0],
                        );
                    }
                    k += 8;
                }
                let accv = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
                let mut s = hsum256(accv);
                while k < kk {
                    s = a_row[k].mul_add(b_row[k], s);
                    k += 1;
                }
                out_block[r * n + j] = s;
            }
        }
    }

    /// Dispatches one `matmul` row block to the AVX2 (`fma = false`) or
    /// AVX2+FMA kernel.
    pub(crate) fn run_matmul_block(
        fma: bool,
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        row0: usize,
        kk: usize,
        n: usize,
    ) {
        if fma {
            assert!(super::fma_available(), "FMA kernel dispatched without CPU support");
            // SAFETY: AVX2+FMA support was just asserted via runtime
            // feature detection.
            unsafe { matmul_block_fma(a, b, out_block, row0, kk, n) }
        } else {
            assert!(super::avx2_available(), "AVX2 kernel dispatched without CPU support");
            // SAFETY: AVX2 support was just asserted via runtime feature
            // detection.
            unsafe { matmul_block_avx2(a, b, out_block, row0, kk, n) }
        }
    }

    /// Dispatches one `transpose_matmul` row block (see
    /// [`run_matmul_block`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_transpose_matmul_block(
        fma: bool,
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        row0: usize,
        m: usize,
        kk: usize,
        n: usize,
    ) {
        if fma {
            assert!(super::fma_available(), "FMA kernel dispatched without CPU support");
            // SAFETY: AVX2+FMA support was just asserted via runtime
            // feature detection.
            unsafe { transpose_matmul_block_fma(a, b, out_block, row0, m, kk, n) }
        } else {
            assert!(super::avx2_available(), "AVX2 kernel dispatched without CPU support");
            // SAFETY: AVX2 support was just asserted via runtime feature
            // detection.
            unsafe { transpose_matmul_block_avx2(a, b, out_block, row0, m, kk, n) }
        }
    }

    /// Dispatches one `matmul_transpose` row block; FMA mode only.
    pub(crate) fn run_matmul_transpose_block(
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        row0: usize,
        kk: usize,
        n: usize,
    ) {
        assert!(super::fma_available(), "FMA kernel dispatched without CPU support");
        // SAFETY: AVX2+FMA support was just asserted via runtime feature
        // detection.
        unsafe { matmul_transpose_block_fma(a, b, out_block, row0, kk, n) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_documented_value() {
        assert_eq!(parse_requested(None), Ok(Requested::Auto));
        assert_eq!(parse_requested(Some("")), Ok(Requested::Auto));
        assert_eq!(parse_requested(Some("auto")), Ok(Requested::Auto));
        assert_eq!(parse_requested(Some(" AUTO ")), Ok(Requested::Auto));
        for off in ["off", "0", "scalar", "false", "OFF"] {
            assert_eq!(parse_requested(Some(off)), Ok(Requested::Off), "{off}");
        }
        assert_eq!(parse_requested(Some("avx2")), Ok(Requested::Avx2));
        for fma in ["fma", "on", "1", "true", "FMA"] {
            assert_eq!(parse_requested(Some(fma)), Ok(Requested::Fma), "{fma}");
        }
        assert!(parse_requested(Some("avx512")).is_err());
        assert!(parse_requested(Some("2")).is_err());
    }

    #[test]
    fn off_always_resolves_to_scalar() {
        assert_eq!(resolve(Requested::Off), GemmKernel::Scalar);
    }

    #[test]
    fn auto_resolves_to_a_bit_exact_kernel() {
        assert!(resolve(Requested::Auto).bit_exact());
        // And it never selects an unavailable kernel.
        assert!(resolve(Requested::Auto).is_available());
        assert!(resolve(Requested::Fma).is_available());
    }

    #[test]
    fn best_available_never_upgrades() {
        assert_eq!(GemmKernel::Scalar.best_available(), GemmKernel::Scalar);
        let a = GemmKernel::Avx2.best_available();
        assert!(a == GemmKernel::Avx2 || a == GemmKernel::Scalar);
        // Fma downgrades through Avx2 before Scalar.
        if !fma_available() && avx2_available() {
            assert_eq!(GemmKernel::Fma.best_available(), GemmKernel::Avx2);
        }
    }

    #[test]
    fn bit_exactness_is_exactly_non_fma() {
        assert!(GemmKernel::Scalar.bit_exact());
        assert!(GemmKernel::Avx2.bit_exact());
        assert!(!GemmKernel::Fma.bit_exact());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GemmKernel::Scalar.label(), "scalar");
        assert_eq!(GemmKernel::Avx2.label(), "avx2");
        assert_eq!(GemmKernel::Fma.label(), "fma");
    }
}
