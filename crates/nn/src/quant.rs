//! Per-row-absmax int8 quantization for inference-only forwards.
//!
//! The serve plane's hot loop is `Mlp::forward` over a shard's batched
//! observations. This module trades bit-identity for throughput and
//! memory: weights are quantized once per policy version to int8 with one
//! scale per *output channel* (each row of `Wᵀ` gets `scale =
//! absmax/127`), activations are quantized dynamically with one scale per
//! *batch row*, and each output element is a pure integer dot product
//!
//! ```text
//! z[r][j] = s_x[r] · s_w[j] · Σ_k xq[r][k]·wq[j][k]  +  b[j]
//! ```
//!
//! The Σ accumulates in `i32`, which is **exact**: every product fits in
//! 15 bits, so the sum cannot lose precision until the contraction
//! dimension exceeds ~130k (asserted far below at [`MAX_ACC_DIM`]). All
//! rounding error therefore comes from the two quantization steps, not
//! the GEMM itself, and the int8 forward is deterministic and
//! batch-split invariant (each output row depends only on its input
//! row) on every CPU.
//!
//! Quantized inference is *never* bit-identical to f32, so the serve
//! plane gates it behind a tested decision-equivalence contract instead:
//! greedy argmax agreement ≥ a pinned threshold on a recorded
//! observation corpus, with exact `Metrics` deltas reported (see
//! `dosco_serve` and DESIGN.md). Training never touches this module.
//!
//! The inner dot product uses an AVX2 kernel (sign-extend to i16 +
//! `madd` into i32 lanes) when the CPU supports it and `DOSCO_SIMD` is
//! not `off`; integer addition is associative, so the vector kernel is
//! bit-equal to the scalar one and the switch is purely about speed.

use crate::matrix::Matrix;
use crate::mlp::{Activation, Mlp};
use crate::simd::GemmKernel;

/// Upper bound on the contraction dimension of the int8 GEMM. The i32
/// accumulator is exact up to `2^31 / 127^2 ≈ 133k` terms; this asserts
/// with margin (the workspace's layers are ≤ a few thousand wide).
pub const MAX_ACC_DIM: usize = 100_000;

/// Quantizes `src` into `dst` with a single absmax scale (`absmax/127`)
/// and returns that scale; `dequantized = q as f32 * scale`. An all-zero
/// row quantizes to zeros with scale `0.0` (exact round-trip). Inputs
/// are assumed finite (trained weights / observation features); non-
/// finite values saturate through the cast like any out-of-range value.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn quantize_row(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_row length mismatch");
    let absmax = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if absmax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let inv = 127.0 / absmax;
    for (d, &s) in dst.iter_mut().zip(src) {
        // `as` saturates, so a lane rounding to ±127.0000x stays in range.
        *d = (s * inv).round() as i8;
    }
    absmax / 127.0
}

/// A row-major int8 matrix with one `f32` scale per row:
/// `element(r, c) ≈ data[r][c] as f32 * scales[r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes each row of `m` independently ([`quantize_row`]).
    pub fn from_rows(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        assert!(
            cols <= MAX_ACC_DIM,
            "int8 GEMM contraction dim {cols} exceeds the exact-i32 bound {MAX_ACC_DIM}"
        );
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = quantize_row(m.row(r), &mut data[r * cols..(r + 1) * cols]);
        }
        QuantizedMatrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The int8 values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The absmax scale of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Expands back to `f32` (each element `q · scale_row`); the
    /// round-trip error per element is at most half a quantization step
    /// (`scale/2`).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *o = f32::from(q) * s;
            }
        }
        out
    }

    /// Heap bytes held (weights + scales) — what the int8 path saves
    /// over `f32` storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i8>() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// Exact i32 dot product of two int8 rows (scalar reference).
fn dot_i8_scalar(x: &[i8], w: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&a, &b) in x.iter().zip(w) {
        acc += i32::from(a) * i32::from(b);
    }
    acc
}

/// AVX2 int8 dot kernel: 16 lanes sign-extended to i16, `madd`-paired
/// into i32, summed horizontally. Integer addition is associative, so
/// this is bit-equal to [`dot_i8_scalar`] (pinned by a test), unlike the
/// f32 SIMD kernels where order matters.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Horizontal sum of 8 i32 lanes.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn hsum_epi32(v: __m256i) -> i32 {
        let q = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let d = _mm_add_epi32(q, _mm_shuffle_epi32::<0b00_00_11_10>(q));
        let s = _mm_add_epi32(d, _mm_shuffle_epi32::<0b00_00_00_01>(d));
        _mm_cvtsi128_si32(s)
    }

    /// See the module docs of [`super`]; requires `x.len() == w.len()`.
    /// Each `madd` lane holds at most `2·127²`, so i32 lanes stay exact
    /// for any length below [`super::MAX_ACC_DIM`].
    #[target_feature(enable = "avx2")]
    fn dot_i8_avx2(x: &[i8], w: &[i8]) -> i32 {
        let len = x.len();
        let mut acc = _mm256_setzero_si256();
        let mut k = 0;
        while k + 16 <= len {
            // SAFETY: `k + 16 <= len` bounds both 16-byte loads inside the
            // equal-length slices.
            unsafe {
                let xv =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(x.as_ptr().add(k).cast::<__m128i>()));
                let wv =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(w.as_ptr().add(k).cast::<__m128i>()));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, wv));
            }
            k += 16;
        }
        let mut sum = hsum_epi32(acc);
        while k < len {
            sum += i32::from(x[k]) * i32::from(w[k]);
            k += 1;
        }
        sum
    }

    /// Safe dispatch wrapper; asserts CPU support.
    pub(super) fn dot_i8(x: &[i8], w: &[i8]) -> i32 {
        assert!(
            super::super::simd::avx2_available(),
            "AVX2 int8 kernel dispatched without CPU support"
        );
        // SAFETY: AVX2 support was just asserted via runtime feature
        // detection.
        unsafe { dot_i8_avx2(x, w) }
    }
}

/// Exact i32 dot product of two equal-length int8 rows, vectorized when
/// `vector` is true (callers pass `false` when `DOSCO_SIMD=off` or the
/// CPU lacks AVX2). Both paths return identical values.
fn dot_i8(x: &[i8], w: &[i8], vector: bool) -> i32 {
    debug_assert_eq!(x.len(), w.len());
    #[cfg(target_arch = "x86_64")]
    {
        if vector {
            return x86::dot_i8(x, w);
        }
    }
    let _ = vector;
    dot_i8_scalar(x, w)
}

/// Whether the int8 dot product should use the AVX2 kernel: requires CPU
/// support and `DOSCO_SIMD` not forcing scalar (the vector kernel is
/// bit-equal, so this only affects speed).
fn vector_dot_enabled() -> bool {
    crate::simd::avx2_available() && crate::simd::active() != GemmKernel::Scalar
}

/// One quantized dense layer: `Wᵀ` stored as int8 rows (one row — and
/// one scale — per output channel) plus the f32 bias.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    wt: QuantizedMatrix,
    b: Vec<f32>,
}

impl QuantizedDense {
    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.wt.cols()
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.wt.rows()
    }
}

/// An inference-only int8 copy of an [`Mlp`]: per-output-channel weight
/// scales baked at conversion, per-row activation scales computed on the
/// fly, activations and biases kept in f32 between layers. See the
/// module docs for the numerics contract.
///
/// # Example
///
/// ```
/// use dosco_nn::{matrix::Matrix, mlp::Mlp, quant::QuantizedMlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let net = Mlp::paper_arch(16, 4, &mut rng);
/// let q = QuantizedMlp::from_mlp(&net);
/// let x = Matrix::zeros(2, 16);
/// assert_eq!(q.forward(&x).cols(), net.forward(&x).cols());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
    activation: Activation,
}

impl QuantizedMlp {
    /// Quantizes a trained network for inference. One-time cost per
    /// policy version (the serve plane converts at shard init and on
    /// hot-swap).
    pub fn from_mlp(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| QuantizedDense {
                wt: QuantizedMatrix::from_rows(&layer.weights().transpose()),
                b: layer.bias().to_vec(),
            })
            .collect();
        QuantizedMlp {
            layers,
            activation: mlp.activation(),
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs()
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Heap bytes held by the quantized weights (cf. 4 bytes/param f32).
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.wt.memory_bytes() + l.b.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Batched int8 forward (`batch × inputs` → `batch × outputs`),
    /// mirroring [`Mlp::forward`]: activation between layers, raw logits
    /// out. Deterministic and batch-split invariant; *not* bit-identical
    /// to the f32 forward (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input dimension.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.inputs(), "quantized forward input width");
        let vector = vector_dot_enabled();
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        let mut xq: Vec<i8> = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let out_dim = layer.outputs();
            let mut z = Matrix::zeros(h.rows(), out_dim);
            xq.resize(h.cols(), 0);
            for r in 0..h.rows() {
                let sx = quantize_row(h.row(r), &mut xq);
                let zrow = z.row_mut(r);
                for (j, zv) in zrow.iter_mut().enumerate() {
                    let acc = dot_i8(&xq, layer.wt.row(j), vector);
                    *zv = sx * layer.wt.scale(j) * acc as f32 + layer.b[j];
                }
            }
            if i != last {
                self.activation.apply_in_place(&mut z);
            }
            h = z;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-1.5..1.5);
        }
        m
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let m = rand_matrix(7, 33, 11);
        let q = QuantizedMatrix::from_rows(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let step = q.scale(r);
            assert!(step > 0.0);
            for (a, b) in m.row(r).iter().zip(back.row(r)) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-7,
                    "row {r}: {a} vs {b} step {step}"
                );
            }
        }
    }

    #[test]
    fn absmax_element_hits_full_range() {
        let m = Matrix::from_rows(&[&[0.5, -2.0, 1.0]]);
        let q = QuantizedMatrix::from_rows(&m);
        assert_eq!(q.row(0)[1], -127);
        assert_eq!(q.scale(0), 2.0 / 127.0);
    }

    #[test]
    fn zero_row_is_exact() {
        let m = Matrix::zeros(2, 5);
        let q = QuantizedMatrix::from_rows(&m);
        assert_eq!(q.scale(0), 0.0);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn vector_dot_is_bit_equal_to_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 100, 1087] {
            let x: Vec<i8> = (0..len).map(|_| rng.gen_range(-127..=127i32) as i8).collect();
            let w: Vec<i8> = (0..len).map(|_| rng.gen_range(-127..=127i32) as i8).collect();
            let scalar = dot_i8(&x, &w, false);
            if crate::simd::avx2_available() {
                assert_eq!(scalar, dot_i8(&x, &w, true), "len {len}");
            }
            // Cross-check against a widened i64 reference.
            let wide: i64 = x.iter().zip(&w).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum();
            assert_eq!(i64::from(scalar), wide, "len {len}");
        }
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::paper_arch(20, 5, &mut rng);
        let q = QuantizedMlp::from_mlp(&net);
        assert_eq!((q.inputs(), q.outputs()), (20, 5));
        let x = rand_matrix(16, 20, 77);
        let exact = net.forward(&x);
        let approx = q.forward(&x);
        let (mut max_err, mut max_mag) = (0.0f32, 0.0f32);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            max_err = max_err.max((a - b).abs());
            max_mag = max_mag.max(a.abs());
        }
        // int8 keeps ~2 decimal digits per tensor; through 3 layers the
        // logits stay within a few percent of full scale.
        assert!(
            max_err <= 0.05 * max_mag.max(1.0),
            "max_err {max_err} vs max_mag {max_mag}"
        );
    }

    #[test]
    fn quantized_forward_is_batch_split_invariant() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Mlp::paper_arch(12, 4, &mut rng);
        let q = QuantizedMlp::from_mlp(&net);
        let x = rand_matrix(6, 12, 41);
        let batched = q.forward(&x);
        for r in 0..x.rows() {
            let single = q.forward(&Matrix::from_rows(&[x.row(r)]));
            assert_eq!(single.row(0), batched.row(r), "row {r}");
        }
    }

    #[test]
    fn quantized_weights_are_4x_smaller() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::paper_arch(16, 4, &mut rng);
        let q = QuantizedMlp::from_mlp(&net);
        let f32_bytes = net.num_params() * std::mem::size_of::<f32>();
        assert!(q.memory_bytes() < f32_bytes / 3, "{} vs {f32_bytes}", q.memory_bytes());
    }
}
