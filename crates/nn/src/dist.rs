//! Categorical policy head: sampling, log-probabilities, entropy, and the
//! policy-gradient logit gradients used by the actor-critic algorithms.

use crate::matrix::Matrix;
use rand::Rng;

/// Numerically stable per-row log-softmax.
pub fn log_softmax_row(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits
        .iter()
        .map(|&l| (l - max).exp())
        .sum::<f32>()
        .ln();
    logits.iter().map(|&l| l - max - log_sum).collect()
}

/// Per-row softmax probabilities.
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    log_softmax_row(logits).iter().map(|&l| l.exp()).collect()
}

/// A batch categorical distribution parameterized by logits
/// (`batch × num_actions`).
///
/// # Example
///
/// ```
/// use dosco_nn::dist::Categorical;
/// use dosco_nn::matrix::Matrix;
/// use rand::SeedableRng;
///
/// let logits = Matrix::from_rows(&[&[0.0, 10.0]]);
/// let dist = Categorical::new(&logits);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(dist.sample(&mut rng), vec![1]); // near-certain action 1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    log_probs: Matrix,
}

impl Categorical {
    /// Builds the distribution from raw logits.
    pub fn new(logits: &Matrix) -> Self {
        let mut log_probs = Matrix::zeros(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            let row = log_softmax_row(logits.row(r));
            log_probs.row_mut(r).copy_from_slice(&row);
        }
        Categorical { log_probs }
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.log_probs.cols()
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.log_probs.rows()
    }

    /// Per-row probabilities.
    pub fn probs(&self) -> Matrix {
        self.log_probs.map(f32::exp)
    }

    /// Samples one action per row (inverse-CDF).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        (0..self.batch()).map(|r| self.sample_row(r, rng)).collect()
    }

    /// Samples one action for a single row — the per-row counterpart of
    /// [`Categorical::sample`], for callers holding one RNG stream per
    /// row (e.g. per-node agents sharing a batched forward pass). Given
    /// the same RNG state, this draws exactly what `sample` would draw
    /// for that row: one `gen::<f32>()` and the same inverse-CDF walk.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn sample_row<R: Rng + ?Sized>(&self, row: usize, rng: &mut R) -> usize {
        let u: f32 = rng.gen();
        let mut acc = 0.0;
        let r = self.log_probs.row(row);
        for (i, &lp) in r.iter().enumerate() {
            acc += lp.exp();
            if u < acc {
                return i;
            }
        }
        r.len() - 1 // guard against f32 rounding
    }

    /// The most likely action per row (greedy inference, Sec. IV-C2).
    pub fn argmax(&self) -> Vec<usize> {
        (0..self.batch())
            .map(|r| {
                let row = self.log_probs.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("log-probs are finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty action space")
            })
            .collect()
    }

    /// Log-probability of the given action per row.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != batch` or an action is out of range.
    pub fn log_prob(&self, actions: &[usize]) -> Vec<f32> {
        assert_eq!(actions.len(), self.batch(), "one action per row required");
        actions
            .iter()
            .enumerate()
            .map(|(r, &a)| self.log_probs.get(r, a))
            .collect()
    }

    /// Per-row entropy `H = −Σ π log π`.
    pub fn entropy(&self) -> Vec<f32> {
        (0..self.batch())
            .map(|r| {
                self.log_probs
                    .row(r)
                    .iter()
                    .map(|&lp| {
                        let p = lp.exp();
                        if p > 0.0 {
                            -p * lp
                        } else {
                            0.0
                        }
                    })
                    .sum()
            })
            .collect()
    }

    /// Gradient of the A2C actor loss w.r.t. the logits:
    /// `L = −(1/B) Σ_b [ adv_b · log π(a_b) + β · H_b ]`.
    ///
    /// Per row: `adv · (π − onehot(a)) + β · π ⊙ (log π + H)`, divided by
    /// the batch size.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn policy_gradient_logits(
        &self,
        actions: &[usize],
        advantages: &[f32],
        entropy_coef: f32,
    ) -> Matrix {
        assert_eq!(actions.len(), self.batch(), "one action per row required");
        assert_eq!(advantages.len(), self.batch(), "one advantage per row required");
        let b = self.batch() as f32;
        let entropies = self.entropy();
        let mut out = Matrix::zeros(self.batch(), self.num_actions());
        for r in 0..self.batch() {
            let lp = self.log_probs.row(r);
            let h = entropies[r];
            let adv = advantages[r];
            let row = out.row_mut(r);
            for (j, (&l, o)) in lp.iter().zip(row.iter_mut()).enumerate() {
                let p = l.exp();
                let pg = adv * (p - if j == actions[r] { 1.0 } else { 0.0 });
                let ent = entropy_coef * p * (l + h);
                *o = (pg + ent) / b;
            }
        }
        out
    }

    /// Fisher-sampled logit gradients for K-FAC's `G` factor: per row,
    /// `(π − onehot(a'))` with `a'` drawn from the model's own
    /// distribution (Wu et al., NeurIPS 2017 — avoids the empirical
    /// Fisher). Scaled by `1/B`.
    pub fn fisher_sample_logits<R: Rng + ?Sized>(&self, rng: &mut R) -> Matrix {
        let sampled = self.sample(rng);
        let b = self.batch() as f32;
        let mut out = self.probs();
        for (r, &a) in sampled.iter().enumerate() {
            let v = out.get(r, a);
            out.set(r, a, v - 1.0);
        }
        out.scale_in_place(1.0 / b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax_row(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn log_softmax_stable_for_large_logits() {
        let lp = log_softmax_row(&[1000.0, 0.0]);
        assert!(lp[0] > -1e-3);
        assert!(lp[1] < -900.0);
        assert!(lp.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_entropy_is_log_k() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]);
        let d = Categorical::new(&logits);
        let h = d.entropy()[0];
        assert!((h - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn sampling_follows_probabilities() {
        let logits = Matrix::from_rows(&[&[0.0, (3.0f32).ln()]]); // p = [0.25, 0.75]
        let d = Categorical::new(&logits);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut ones = 0;
        for _ in 0..n {
            if d.sample(&mut rng)[0] == 1 {
                ones += 1;
            }
        }
        let frac = ones as f32 / n as f32;
        assert!((frac - 0.75).abs() < 0.02, "{frac}");
    }

    /// `sample_row` with per-row RNG clones reproduces the batch `sample`
    /// draw-for-draw.
    #[test]
    fn sample_row_matches_batch_sample() {
        let logits = Matrix::from_rows(&[&[0.3, -0.2, 0.8], &[1.5, 0.0, -1.0], &[0.0, 0.0, 0.0]]);
        let d = Categorical::new(&logits);
        let mut batch_rng = StdRng::seed_from_u64(17);
        // The batch path draws row 0, then row 1, then row 2 from one
        // stream; replay the same stream positions per row.
        let mut row_rng = StdRng::seed_from_u64(17);
        let batch = d.sample(&mut batch_rng);
        let rows: Vec<usize> = (0..3).map(|r| d.sample_row(r, &mut row_rng)).collect();
        assert_eq!(batch, rows);
    }

    #[test]
    fn argmax_and_log_prob() {
        let logits = Matrix::from_rows(&[&[0.1, 2.0, -1.0], &[5.0, 0.0, 0.0]]);
        let d = Categorical::new(&logits);
        assert_eq!(d.argmax(), vec![1, 0]);
        let lp = d.log_prob(&[1, 0]);
        assert!(lp.iter().all(|&v| v < 0.0));
        // Most likely action has the highest log prob in its row.
        assert!(lp[0] > d.log_prob(&[0, 0])[0]);
    }

    /// The analytic logit gradient must match finite differences of the
    /// actor loss.
    #[test]
    fn policy_gradient_matches_finite_differences() {
        let logits = vec![0.4f32, -0.3, 1.1];
        let action = 2usize;
        let adv = -0.7f32;
        let beta = 0.01f32;
        let loss = |lg: &[f32]| -> f32 {
            let d = Categorical::new(&Matrix::row_vector(lg));
            -(adv * d.log_prob(&[action])[0] + beta * d.entropy()[0])
        };
        let d = Categorical::new(&Matrix::row_vector(&logits));
        let grad = d.policy_gradient_logits(&[action], &[adv], beta);
        let eps = 1e-3;
        for j in 0..3 {
            let mut up = logits.clone();
            up[j] += eps;
            let mut down = logits.clone();
            down[j] -= eps;
            let numeric = (loss(&up) - loss(&down)) / (2.0 * eps);
            let analytic = grad.get(0, j);
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "logit {j}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fisher_sample_rows_sum_to_zero() {
        // (π − onehot) sums to 0 per row — a quick structural invariant.
        let logits = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 1.0, 1.0]]);
        let d = Categorical::new(&logits);
        let mut rng = StdRng::seed_from_u64(9);
        let g = d.fisher_sample_logits(&mut rng);
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    #[should_panic(expected = "one action per row")]
    fn log_prob_rejects_wrong_length() {
        let d = Categorical::new(&Matrix::from_rows(&[&[0.0, 0.0]]));
        d.log_prob(&[0, 1]);
    }
}
