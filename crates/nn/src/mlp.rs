//! Multi-layer perceptrons with manual forward/backward passes.
//!
//! The paper's actor and critic are 2×256 tanh MLPs (Sec. V-A2). This
//! module provides exactly that family: dense layers, tanh hidden
//! activations, a linear output head, and explicit gradient structures that
//! optimizers and K-FAC consume.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's choice).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// No activation (linear network).
    Identity,
}

impl Activation {
    /// Applies the activation in place so the forward pass can reuse the
    /// pre-activation buffer instead of allocating.
    pub(crate) fn apply_in_place(self, z: &mut Matrix) {
        match self {
            Activation::Tanh => {
                for v in z.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            Activation::Relu => {
                for v in z.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            Activation::Identity => {}
        }
    }

    /// Derivative expressed in terms of the *activation output* `a`
    /// (cheap for tanh: `1 − a²`).
    fn derivative_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// One dense (fully connected) layer: `z = x·W + b` with `W: in × out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    pub(crate) w: Matrix,
    pub(crate) b: Vec<f32>,
}

impl Dense {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        Dense {
            w: Matrix::xavier_uniform(inputs, outputs, rng),
            b: vec![0.0; outputs],
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// `z = x·W + b` into a preallocated `z` (`x.rows() × outputs`).
    fn forward_into(&self, x: &Matrix, z: &mut Matrix) {
        x.matmul_into(&self.w, z);
        z.add_row_broadcast(&self.b);
    }
}

/// Gradients for one dense layer, plus the per-sample pre-activation
/// gradients K-FAC needs for its `G` factor.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// `∂L/∂W` (same shape as the weights).
    pub dw: Matrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
    /// Per-sample gradients w.r.t. the layer's pre-activations
    /// (`batch × out`), *before* batch reduction.
    pub preact_grads: Matrix,
}

/// Gradients for a whole [`Mlp`], one entry per layer (input-side first).
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Per-layer gradients.
    pub layers: Vec<LayerGrads>,
}

impl Gradients {
    /// Global L2 norm over all weight and bias gradients.
    pub fn global_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for l in &self.layers {
            sq += l.dw.dot(&l.dw);
            sq += l.db.iter().map(|v| v * v).sum::<f32>();
        }
        sq.sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`
    /// (gradient clipping; ACKTR uses 0.5). Returns the applied factor.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let factor = max_norm / norm;
        for l in &mut self.layers {
            l.dw.scale_in_place(factor);
            for b in &mut l.db {
                *b *= factor;
            }
        }
        factor
    }

    /// Element-wise sum with another gradient set (e.g. joint actor losses).
    ///
    /// # Panics
    ///
    /// Panics on layer-shape mismatch.
    pub fn add(&mut self, other: &Gradients) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.dw.add_scaled(&b.dw, 1.0);
            for (x, y) in a.db.iter_mut().zip(&b.db) {
                *x += y;
            }
        }
    }
}

/// Intermediate activations stored by [`Mlp::forward_cached`], needed for
/// backpropagation and the K-FAC `A` factors.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardCache {
    /// `inputs[i]`: the input batch fed to layer `i` (the activation output
    /// of layer `i−1`, or the network input for `i = 0`).
    pub inputs: Vec<Matrix>,
    /// The final output (linear head).
    pub output: Matrix,
}

/// A multi-layer perceptron with a linear output head.
///
/// # Example
///
/// ```
/// use dosco_nn::mlp::{Activation, Mlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // The paper's actor shape: obs 16 -> 256 -> 256 -> 4 actions.
/// let net = Mlp::new(&[16, 256, 256, 4], Activation::Tanh, &mut rng);
/// let obs = dosco_nn::matrix::Matrix::zeros(1, 16);
/// let logits = net.forward(&obs);
/// assert_eq!((logits.rows(), logits.cols()), (1, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs) and hidden activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// The paper's 2×256 tanh architecture for `inputs` observations and
    /// `outputs` heads (Sec. V-A2).
    pub fn paper_arch<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        Mlp::new(&[inputs, 256, 256, outputs], Activation::Tanh, rng)
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs()
    }

    /// The layers (input-side first).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// The hidden activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Forward pass for a batch (`batch × inputs` → `batch × outputs`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input dimension.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        // Ping-pong between the activation `h` and a scratch buffer `z`:
        // after the first layer both keep their (maximum-width) allocation
        // for the rest of the pass.
        let mut h = x.clone();
        let mut z = Matrix::zeros(0, 0);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            z.reshape_zeroed(h.rows(), layer.outputs());
            layer.forward_into(&h, &mut z);
            if i != last {
                self.activation.apply_in_place(&mut z);
            }
            std::mem::swap(&mut h, &mut z);
        }
        h
    }

    /// Forward pass that records the per-layer inputs for backpropagation.
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = Matrix::zeros(h.rows(), layer.outputs());
            layer.forward_into(&h, &mut z);
            if i != last {
                self.activation.apply_in_place(&mut z);
            }
            // Move `h` into the cache instead of cloning it; `z` becomes
            // the next layer's input (and is cached by the next turn).
            inputs.push(h);
            h = z;
        }
        ForwardCache { inputs, output: h }
    }

    /// Backpropagates `dout = ∂L/∂output` (`batch × outputs`, already
    /// including any `1/batch` normalization) through the cached forward
    /// pass. Returns per-layer gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dout`'s shape does not match the cached output.
    pub fn backward(&self, cache: &ForwardCache, dout: &Matrix) -> Gradients {
        self.backward_with_input_grad(cache, dout).0
    }

    /// Like [`Mlp::backward`], additionally returning `∂L/∂input`
    /// (`batch × inputs`) — needed e.g. to chain a critic's action gradient
    /// into an actor (DDPG).
    ///
    /// # Panics
    ///
    /// Panics if `dout`'s shape does not match the cached output.
    pub fn backward_with_input_grad(
        &self,
        cache: &ForwardCache,
        dout: &Matrix,
    ) -> (Gradients, Matrix) {
        assert_eq!(
            (dout.rows(), dout.cols()),
            (cache.output.rows(), cache.output.cols()),
            "dout shape mismatch"
        );
        let mut grads: Vec<Option<LayerGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut delta = dout.clone();
        for i in (0..self.layers.len()).rev() {
            let input = &cache.inputs[i];
            let dw = input.transpose_matmul(&delta);
            let db = delta.column_sums();
            let dinput = delta.matmul_transpose(&self.layers[i].w);
            grads[i] = Some(LayerGrads {
                dw,
                db,
                preact_grads: delta,
            });
            if i > 0 {
                // cache.inputs[i] is the activation output of layer i-1:
                // chain through the activation derivative, in place on the
                // input gradient (no intermediate derivative matrix).
                let act = self.activation;
                let mut dinput = dinput;
                for (d, &a) in dinput
                    .as_mut_slice()
                    .iter_mut()
                    .zip(cache.inputs[i].as_slice())
                {
                    *d *= act.derivative_from_output(a);
                }
                delta = dinput;
            } else {
                delta = dinput; // ∂L/∂input of the whole network
            }
        }
        (
            Gradients {
                layers: grads.into_iter().map(|g| g.expect("filled")).collect(),
            },
            delta,
        )
    }

    /// Polyak averaging toward `source`: `θ ← τ·θ_source + (1−τ)·θ`.
    /// Used for DDPG target networks.
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f32) {
        assert_eq!(
            self.layers.len(),
            source.layers.len(),
            "soft update requires identical architectures"
        );
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            assert_eq!(
                (dst.w.rows(), dst.w.cols()),
                (src.w.rows(), src.w.cols()),
                "soft update requires identical architectures"
            );
            dst.w.scale_in_place(1.0 - tau);
            dst.w.add_scaled(&src.w, tau);
            for (b, &s) in dst.b.iter_mut().zip(&src.b) {
                *b = (1.0 - tau) * *b + tau * s;
            }
        }
    }

    /// Serializes every parameter into one flat vector, layer by layer
    /// (input-side first), weights row-major then bias. Together with
    /// [`Mlp::load_flat_params`] this is the wire format of policy
    /// snapshots in the actor–learner runtime.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Restores parameters from a [`Mlp::flat_params`] vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` does not match [`Mlp::num_params`].
    pub fn load_flat_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.num_params(),
            "flat parameter count mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            let nw = layer.w.rows() * layer.w.cols();
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&params[offset..offset + nw]);
            offset += nw;
            let nb = layer.b.len();
            layer.b.copy_from_slice(&params[offset..offset + nb]);
            offset += nb;
        }
    }

    /// Applies an additive update: `W ← W + scale · dW`, `b ← b + scale ·
    /// db` for every layer (pass `scale = -lr` for plain gradient descent).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_update(&mut self, grads: &Gradients, scale: f32) {
        assert_eq!(grads.layers.len(), self.layers.len(), "layer count mismatch");
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.w.add_scaled(&g.dw, scale);
            for (b, &d) in layer.b.iter_mut().zip(&g.db) {
                *b += scale * d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::paper_arch(16, 4, &mut rng());
        assert_eq!(net.inputs(), 16);
        assert_eq!(net.outputs(), 4);
        assert_eq!(net.layers().len(), 3);
        let out = net.forward(&Matrix::zeros(5, 16));
        assert_eq!((out.rows(), out.cols()), (5, 4));
        assert_eq!(
            net.num_params(),
            16 * 256 + 256 + 256 * 256 + 256 + 256 * 4 + 4
        );
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.7], &[1.0, 0.0, -1.0]]);
        let cache = net.forward_cached(&x);
        assert_eq!(cache.output, net.forward(&x));
        assert_eq!(cache.inputs.len(), 2);
        assert_eq!(cache.inputs[0], x);
    }

    /// Central-difference gradient check on a scalar loss L = sum(output²)/2.
    #[test]
    fn backward_matches_finite_differences() {
        let mut net = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.9, 0.1], &[-0.5, 0.8, 0.0, 0.4]]);
        let cache = net.forward_cached(&x);
        // dL/dout = out for L = 0.5 Σ out².
        let grads = net.backward(&cache, &cache.output);

        let loss = |net: &Mlp| -> f64 {
            let out = net.forward(&x);
            0.5 * out.as_slice().iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>()
        };
        let eps = 1e-3f32;
        // Check a sample of weight coordinates in every layer.
        for li in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 2), (3, 1)] {
                if r >= net.layers[li].w.rows() || c >= net.layers[li].w.cols() {
                    continue;
                }
                let orig = net.layers[li].w.get(r, c);
                net.layers[li].w.set(r, c, orig + eps);
                let up = loss(&net);
                net.layers[li].w.set(r, c, orig - eps);
                let down = loss(&net);
                net.layers[li].w.set(r, c, orig);
                let numeric = ((up - down) / (2.0 * f64::from(eps))) as f32;
                let analytic = grads.layers[li].dw.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2_f32.max(0.05 * analytic.abs()),
                    "layer {li} w[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // And a bias coordinate.
            let orig = net.layers[li].b[0];
            net.layers[li].b[0] = orig + eps;
            let up = loss(&net);
            net.layers[li].b[0] = orig - eps;
            let down = loss(&net);
            net.layers[li].b[0] = orig;
            let numeric = ((up - down) / (2.0 * f64::from(eps))) as f32;
            let analytic = grads.layers[li].db[0];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "layer {li} b[0]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // Fit y = [x0 + x1, x0 - x1] with a small tanh net.
        let mut net = Mlp::new(&[2, 16, 2], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[
            &[0.1, 0.2],
            &[-0.3, 0.5],
            &[0.7, -0.1],
            &[0.0, 0.4],
        ]);
        let y = Matrix::from_rows(&[
            &[0.3, -0.1],
            &[0.2, -0.8],
            &[0.6, 0.8],
            &[0.4, -0.4],
        ]);
        let loss = |net: &Mlp| {
            let d = net.forward(&x).sub(&y);
            d.dot(&d) / (2.0 * x.rows() as f32)
        };
        let initial = loss(&net);
        for _ in 0..300 {
            let cache = net.forward_cached(&x);
            let dout = cache.output.sub(&y).scaled(1.0 / x.rows() as f32);
            let grads = net.backward(&cache, &dout);
            net.apply_update(&grads, -0.1);
        }
        let finl = loss(&net);
        assert!(finl < initial * 0.05, "loss {initial} -> {finl}");
    }

    #[test]
    fn clip_global_norm() {
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[&[10.0, -10.0]]);
        let cache = net.forward_cached(&x);
        let mut grads = net.backward(&cache, &cache.output.scaled(100.0));
        let before = grads.global_norm();
        assert!(before > 0.5);
        let factor = grads.clip_global_norm(0.5);
        assert!(factor < 1.0);
        assert!((grads.global_norm() - 0.5).abs() < 1e-3);
        // Clipping below the norm is a no-op.
        assert_eq!(grads.clip_global_norm(10.0), 1.0);
    }

    #[test]
    fn relu_and_identity_activations() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        Activation::Relu.apply_in_place(&mut m);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 2.0]]));
        assert_eq!(Activation::Identity.derivative_from_output(5.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_outputs() {
        let net = Mlp::paper_arch(8, 3, &mut rng());
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::from_rows(&[&[0.1; 8]]);
        // f32 values survive JSON round-trips closely enough for identical
        // argmax decisions; check elementwise closeness.
        let (a, b) = (net.forward(&x), back.forward(&x));
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_size() {
        Mlp::new(&[4], Activation::Tanh, &mut rng());
    }

    /// flat_params/load_flat_params round-trip bit-exactly: restoring a
    /// snapshot into a differently initialized net makes the nets equal.
    #[test]
    fn flat_params_round_trip_is_bit_exact() {
        let src = Mlp::new(&[5, 7, 3], Activation::Tanh, &mut rng());
        let flat = src.flat_params();
        assert_eq!(flat.len(), src.num_params());
        let mut dst = Mlp::new(&[5, 7, 3], Activation::Tanh, &mut StdRng::seed_from_u64(99));
        assert_ne!(src, dst);
        dst.load_flat_params(&flat);
        assert_eq!(src, dst, "restored net must equal the snapshot bitwise");
        assert_eq!(dst.flat_params(), flat);
    }

    #[test]
    #[should_panic(expected = "flat parameter count mismatch")]
    fn load_flat_params_checks_length() {
        let mut net = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut rng());
        net.load_flat_params(&[0.0; 3]);
    }

    /// The input gradient must match finite differences of L = 0.5 Σ out².
    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng());
        let x = vec![0.2f32, -0.6, 0.4];
        let loss = |x: &[f32]| -> f32 {
            let out = net.forward(&Matrix::row_vector(x));
            0.5 * out.as_slice().iter().map(|&v| v * v).sum::<f32>()
        };
        let cache = net.forward_cached(&Matrix::row_vector(&x));
        let (_, dinput) = net.backward_with_input_grad(&cache, &cache.output);
        let eps = 1e-3;
        for j in 0..3 {
            let mut up = x.clone();
            up[j] += eps;
            let mut down = x.clone();
            down[j] -= eps;
            let numeric = (loss(&up) - loss(&down)) / (2.0 * eps);
            let analytic = dinput.get(0, j);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input {j}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
