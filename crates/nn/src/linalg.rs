//! Dense linear algebra for K-FAC: damped symmetric inversion.
//!
//! K-FAC preconditions gradients with the inverses of the (symmetric
//! positive semi-definite) Kronecker factors `A + λI` and `G + λI`
//! (Wu et al., NeurIPS 2017). Inversion runs in `f64` via Cholesky for
//! numerical robustness and returns `f32` matrices.

use crate::matrix::Matrix;
use std::fmt;

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// Cholesky failed: the (damped) matrix is not positive definite.
    NotPositiveDefinite {
        /// The pivot index where factorization broke down.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization `M = L Lᵀ` of a symmetric positive-definite
/// matrix, in `f64`. Returns the lower factor in packed row-major form.
fn cholesky_f64(m: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = m[i * n + j];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Inverts the symmetric positive-definite matrix `m + damping·I`.
///
/// This is the K-FAC damped-inverse primitive: the damping both regularizes
/// the curvature estimate and guarantees positive definiteness for PSD
/// inputs.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] if the damped matrix still fails
/// Cholesky (e.g. damping too small for a badly indefinite input).
pub fn damped_inverse(m: &Matrix, damping: f64) -> Result<Matrix, LinalgError> {
    let n = m.rows();
    if m.rows() != m.cols() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    // Promote to f64 and add damping on the diagonal.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = f64::from(m.get(i, j));
        }
        a[i * n + i] += damping;
    }
    let l = cholesky_f64(&a, n)?;
    // Invert via two triangular solves per unit vector: M⁻¹ = L⁻ᵀ L⁻¹.
    let mut inv = vec![0.0f64; n * n];
    let mut y = vec![0.0f64; n];
    for col in 0..n {
        // Forward solve L y = e_col.
        for i in 0..n {
            let mut s = if i == col { 1.0 } else { 0.0 };
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        // Back solve Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * inv[k * n + col];
            }
            inv[i * n + col] = s / l[i * n + i];
        }
    }
    Ok(Matrix::from_fn(n, n, |r, c| inv[r * n + c] as f32))
}

/// Symmetrizes a matrix in place: `m ← (m + mᵀ)/2`. Running covariance
/// estimates drift slightly asymmetric in `f32`; K-FAC symmetrizes before
/// inversion.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn symmetrize(m: &mut Matrix) {
    assert_eq!(m.rows(), m.cols(), "symmetrize requires a square matrix");
    let n = m.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m.get(i, j) + m.get(j, i));
            m.set(i, j, avg);
            m.set(j, i, avg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
        a.sub(b).max_abs()
    }

    #[test]
    fn inverse_of_identity() {
        let inv = damped_inverse(&Matrix::identity(4), 0.0).unwrap();
        assert!(max_abs_diff(&inv, &Matrix::identity(4)) < 1e-6);
    }

    #[test]
    fn inverse_round_trip_spd() {
        // Build SPD matrix M = B Bᵀ + I.
        let b = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[-1.0, 0.3, 2.0],
            &[0.7, -0.2, 1.5],
        ]);
        let m = b.matmul_transpose(&b).add(&Matrix::identity(3));
        let inv = damped_inverse(&m, 0.0).unwrap();
        let prod = m.matmul(&inv);
        assert!(max_abs_diff(&prod, &Matrix::identity(3)) < 1e-4, "{prod:?}");
    }

    #[test]
    fn damping_shifts_diagonal() {
        // (I + λI)⁻¹ = 1/(1+λ) I.
        let inv = damped_inverse(&Matrix::identity(3), 1.0).unwrap();
        assert!((inv.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(inv.get(0, 1).abs() < 1e-6);
    }

    #[test]
    fn damping_rescues_psd_singular() {
        // Rank-1 PSD matrix: singular without damping.
        let v = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let m = v.matmul_transpose(&v); // 2x2, rank 1
        assert!(damped_inverse(&m, 0.0).is_err());
        let inv = damped_inverse(&m, 0.1).unwrap();
        // Check (M + 0.1 I) inv ≈ I.
        let damped = m.add(&Matrix::identity(2).scaled(0.1));
        assert!(max_abs_diff(&damped.matmul(&inv), &Matrix::identity(2)) < 1e-4);
    }

    #[test]
    fn rejects_non_square() {
        let err = damped_inverse(&Matrix::zeros(2, 3), 1.0).unwrap_err();
        assert_eq!(err, LinalgError::NotSquare { rows: 2, cols: 3 });
    }

    #[test]
    fn rejects_negative_definite() {
        let m = Matrix::identity(2).scaled(-5.0);
        assert!(matches!(
            damped_inverse(&m, 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        symmetrize(&mut m);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn large_inverse_stays_accurate() {
        // 64x64 SPD with moderate conditioning, like a K-FAC factor.
        let n = 64;
        let b = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 / 13.0 - 0.5);
        let m = b.matmul_transpose(&b).add(&Matrix::identity(n).scaled(0.5));
        let inv = damped_inverse(&m, 0.01).unwrap();
        let damped = m.add(&Matrix::identity(n).scaled(0.01));
        let prod = damped.matmul(&inv);
        assert!(max_abs_diff(&prod, &Matrix::identity(n)) < 1e-2);
    }
}
