//! Kronecker-factored approximate curvature (K-FAC) preconditioning.
//!
//! ACKTR (Wu et al., NeurIPS 2017 [38]) trains actor and critic with a
//! natural-gradient step: per dense layer, the Fisher information matrix is
//! approximated as the Kronecker product `F ≈ A ⊗ G` of the input
//! second-moment matrix `A = E[ā āᵀ]` (with a homogeneous coordinate
//! folding in the bias) and the pre-activation gradient second-moment
//! matrix `G = E[g gᵀ]`, where the `g` are sampled from the model's own
//! predictive distribution (not the empirical loss gradient). The
//! preconditioned update is `Δ = A⁻¹ ∇ G⁻¹`, rescaled so the quadratic
//! KL estimate stays inside a trust region (Sec. IV-C2: KL clip 0.001).

use crate::linalg::{damped_inverse, symmetrize, LinalgError};
use crate::matrix::Matrix;
use crate::mlp::{ForwardCache, Gradients, LayerGrads, Mlp};
use crate::par;
use serde::{Deserialize, Serialize};

/// K-FAC hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KfacConfig {
    /// Base learning rate η (the paper uses 0.25).
    pub lr: f32,
    /// Trust region δ on the quadratic KL estimate (the paper uses 0.001).
    pub kl_clip: f32,
    /// Tikhonov damping λ added to both factors before inversion.
    pub damping: f64,
    /// Exponential moving-average decay for the factors.
    pub stat_decay: f32,
    /// Recompute the damped inverses every this many steps.
    pub inverse_period: u32,
    /// Global gradient-norm clip applied before preconditioning (the paper
    /// uses 0.5).
    pub max_grad_norm: f32,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            lr: 0.25,
            kl_clip: 0.001,
            damping: 0.01,
            stat_decay: 0.95,
            inverse_period: 20,
            max_grad_norm: 0.5,
        }
    }
}

/// Per-layer Kronecker factors and their cached inverses.
#[derive(Debug, Clone)]
struct LayerFactors {
    /// `A = E[ā āᵀ]`, `(in+1) × (in+1)` with the homogeneous coordinate.
    a: Matrix,
    /// `G = E[g gᵀ]`, `out × out`.
    g: Matrix,
    a_inv: Option<Matrix>,
    g_inv: Option<Matrix>,
    initialized: bool,
}

/// K-FAC natural-gradient optimizer state for one [`Mlp`].
///
/// Usage per update:
/// 1. [`Kfac::update_stats`] with the forward cache and *Fisher-sampled*
///    per-layer pre-activation gradients (see
///    [`crate::dist::Categorical::fisher_sample_logits`] for policy heads),
/// 2. [`Kfac::step`] with the true loss gradients.
#[derive(Debug, Clone)]
pub struct Kfac {
    config: KfacConfig,
    layers: Vec<LayerFactors>,
    steps: u32,
}

impl Kfac {
    /// Creates K-FAC state shaped for `net`.
    pub fn new(net: &Mlp, config: KfacConfig) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| LayerFactors {
                a: Matrix::identity(l.inputs() + 1),
                g: Matrix::identity(l.outputs()),
                a_inv: None,
                g_inv: None,
                initialized: false,
            })
            .collect();
        Kfac {
            config,
            layers,
            steps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KfacConfig {
        &self.config
    }

    /// Overwrites the base learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Updates the running Kronecker factors from one batch: `A` from the
    /// cached layer inputs, `G` from `fisher_grads` (per-layer `batch × out`
    /// pre-activation gradients sampled from the model distribution — e.g.
    /// obtained by backpropagating Fisher-sampled output gradients and
    /// collecting [`LayerGrads::preact_grads`]).
    ///
    /// # Panics
    ///
    /// Panics on layer-count or shape mismatches.
    pub fn update_stats(&mut self, cache: &ForwardCache, fisher_grads: &[&Matrix]) {
        assert_eq!(
            fisher_grads.len(),
            self.layers.len(),
            "one Fisher gradient batch per layer required"
        );
        let _span = dosco_obs::span(dosco_obs::SpanKind::KfacStats);
        let decay = self.config.stat_decay;
        // Each layer's factors depend only on that layer's inputs and
        // Fisher gradients, so the layers update in parallel (the values
        // are identical to the serial loop for any thread count).
        par::par_map_mut(&mut self.layers, |i, factors| {
            let x = &cache.inputs[i];
            let batch = x.rows() as f32;
            assert!(batch > 0.0, "empty batch");
            // Extend inputs with the homogeneous coordinate for the bias.
            let xe = Matrix::from_fn(x.rows(), x.cols() + 1, |r, c| {
                if c < x.cols() {
                    x.get(r, c)
                } else {
                    1.0
                }
            });
            let a_new = xe.transpose_matmul(&xe).scaled(1.0 / batch);
            let g = fisher_grads[i];
            assert_eq!(g.rows(), x.rows(), "Fisher gradient batch size mismatch");
            // fisher_grads carry 1/batch scaling from the sampler; the
            // second moment needs Σ g gᵀ · batch to undo the square of it.
            let g_new = g.transpose_matmul(g).scaled(batch);
            if factors.initialized {
                factors.a.scale_in_place(decay);
                factors.a.add_scaled(&a_new, 1.0 - decay);
                factors.g.scale_in_place(decay);
                factors.g.add_scaled(&g_new, 1.0 - decay);
            } else {
                factors.a = a_new;
                factors.g = g_new;
                factors.initialized = true;
            }
        });
    }

    fn refresh_inverses(&mut self) -> Result<(), LinalgError> {
        let _span = dosco_obs::span(dosco_obs::SpanKind::KfacInversion);
        let damping = self.config.damping;
        // The two Cholesky inversions per layer are independent across
        // layers; run them in parallel and surface the first (lowest-layer)
        // error so failures are deterministic.
        par::par_map_mut(&mut self.layers, |_, f| -> Result<(), LinalgError> {
            symmetrize(&mut f.a);
            symmetrize(&mut f.g);
            f.a_inv = Some(damped_inverse(&f.a, damping)?);
            f.g_inv = Some(damped_inverse(&f.g, damping)?);
            Ok(())
        })
        .into_iter()
        .collect()
    }

    /// Applies one natural-gradient step for the true loss `grads`.
    ///
    /// Combines each layer's `[dW; db]` into the homogeneous layout,
    /// preconditions with `A⁻¹ · ∇ · G⁻¹`, computes the trust-region scale
    /// `η = min(lr, √(2δ / Δᵀ∇))`, and updates `net`.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] if a factor inversion fails (increase
    /// damping).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `net`, `grads`, and this state.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) -> Result<(), LinalgError> {
        assert_eq!(grads.layers.len(), self.layers.len(), "layer count mismatch");
        let mut grads = grads.clone();
        grads.clip_global_norm(self.config.max_grad_norm);
        if self.steps.is_multiple_of(self.config.inverse_period) || self.layers[0].a_inv.is_none()
        {
            self.refresh_inverses()?;
        }
        self.steps += 1;

        // Precondition every layer; accumulate Δᵀ∇ ≈ ΔᵀFΔ for the trust
        // region (exact when F Δ = ∇).
        let mut nat_layers = Vec::with_capacity(grads.layers.len());
        let mut quad = 0.0f64;
        for (factors, g) in self.layers.iter().zip(&grads.layers) {
            let a_inv = factors.a_inv.as_ref().expect("inverses refreshed");
            let g_inv = factors.g_inv.as_ref().expect("inverses refreshed");
            // Homogeneous gradient: (in+1) × out with db as the last row.
            let rows = g.dw.rows() + 1;
            let combined = Matrix::from_fn(rows, g.dw.cols(), |r, c| {
                if r < g.dw.rows() {
                    g.dw.get(r, c)
                } else {
                    g.db[c]
                }
            });
            let nat = a_inv.matmul(&combined).matmul(g_inv);
            quad += f64::from(nat.dot(&combined));
            nat_layers.push(nat);
        }
        let quad = quad.max(0.0);
        let eta = if quad > 0.0 {
            (f64::from(2.0 * self.config.kl_clip) / quad)
                .sqrt()
                .min(f64::from(self.config.lr)) as f32
        } else {
            self.config.lr
        };

        // Split updates back into weight/bias shapes and apply.
        let update = Gradients {
            layers: nat_layers
                .into_iter()
                .zip(&grads.layers)
                .map(|(nat, g)| {
                    let dw = Matrix::from_fn(g.dw.rows(), g.dw.cols(), |r, c| nat.get(r, c));
                    let db = (0..g.db.len())
                        .map(|c| nat.get(g.dw.rows(), c))
                        .collect();
                    LayerGrads {
                        dw,
                        db,
                        preact_grads: Matrix::zeros(0, 0),
                    }
                })
                .collect(),
        };
        net.apply_update(&update, -eta);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    /// With identity factors (before any stats), K-FAC reduces to clipped,
    /// trust-region-scaled gradient descent and must decrease a regression
    /// loss.
    #[test]
    fn kfac_descends_regression_loss() {
        let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[0.5, -0.5],
            &[-0.8, 0.3],
            &[0.9, 0.9],
        ]);
        let y = Matrix::from_rows(&[&[0.2], &[-0.3], &[0.5], &[0.9]]);
        let loss = |net: &Mlp| {
            let d = net.forward(&x).sub(&y);
            d.dot(&d) / (2.0 * x.rows() as f32)
        };
        let mut kfac = Kfac::new(&net, KfacConfig::default());
        let mut r = rng();
        let initial = loss(&net);
        for _ in 0..200 {
            let cache = net.forward_cached(&x);
            let dout = cache.output.sub(&y).scaled(1.0 / x.rows() as f32);
            let grads = net.backward(&cache, &dout);
            // Fisher sampling for a regression (Gaussian) head: g = out − t
            // with t ~ N(out, 1), i.e. standard-normal noise.
            use rand::Rng as _;
            let fisher_out = Matrix::from_fn(x.rows(), 1, |_, _| {
                let u1: f32 = r.gen_range(1e-6..1.0);
                let u2: f32 = r.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos())
                    / x.rows() as f32
            });
            let fisher = net.backward(&cache, &fisher_out);
            let fgrads: Vec<&Matrix> = fisher.layers.iter().map(|l| &l.preact_grads).collect();
            kfac.update_stats(&cache, &fgrads);
            kfac.step(&mut net, &grads).unwrap();
        }
        let fin = loss(&net);
        assert!(fin < 0.2 * initial, "loss {initial} -> {fin}");
    }

    /// The trust region bounds the update: for a huge gradient, the applied
    /// step must be much smaller than lr · |nat-grad|.
    #[test]
    fn trust_region_limits_step_size() {
        let mut net = Mlp::new(&[1, 1], Activation::Identity, &mut rng());
        let before = net.layers()[0].weights().get(0, 0);
        let mut kfac = Kfac::new(&net, KfacConfig::default());
        let grads = Gradients {
            layers: vec![LayerGrads {
                dw: Matrix::from_rows(&[&[1e4]]),
                db: vec![0.0],
                preact_grads: Matrix::zeros(0, 0),
            }],
        };
        kfac.step(&mut net, &grads).unwrap();
        let delta = (net.layers()[0].weights().get(0, 0) - before).abs();
        // Norm clip bounds the gradient at 0.5; trust region shrinks the
        // step to sqrt(2*0.001/quad): for quad = 0.25 that is ~0.089·0.5.
        assert!(delta < 0.1, "step {delta} too large");
        assert!(delta > 0.0, "step did not move");
    }

    /// On a pure linear least-squares problem, the Fisher equals the
    /// Gauss-Newton matrix, so preconditioning should accelerate
    /// convergence versus plain SGD at the same nominal step budget.
    #[test]
    fn kfac_beats_sgd_on_ill_conditioned_problem() {
        use crate::optim::{Optimizer, Sgd};
        // Ill-conditioned inputs: one feature scaled 10x.
        let x = Matrix::from_rows(&[
            &[10.0, 0.1],
            &[-10.0, 0.2],
            &[10.0, -0.3],
            &[-10.0, -0.1],
        ]);
        let y = Matrix::from_rows(&[&[1.1], &[-0.8], &[0.7], &[-1.2]]);
        let train = |use_kfac: bool| -> f32 {
            let mut net = Mlp::new(&[2, 1], Activation::Identity, &mut rng());
            let mut kfac = Kfac::new(
                &net,
                KfacConfig {
                    lr: 0.5,
                    kl_clip: 0.01,
                    damping: 1e-3,
                    stat_decay: 0.9,
                    inverse_period: 5,
                    max_grad_norm: 1e9,
                },
            );
            let mut sgd = Sgd::new(0.004, 0.0); // near the stability limit
            let mut r = rng();
            // 300 steps: enough for K-FAC's trust-region-bounded updates to
            // cross from any Xavier init to the optimum, while SGD is still
            // stuck in the ill-conditioned direction (rate 1 − lr·λ_min).
            for _ in 0..300 {
                let cache = net.forward_cached(&x);
                let dout = cache.output.sub(&y).scaled(1.0 / x.rows() as f32);
                let grads = net.backward(&cache, &dout);
                if use_kfac {
                    use rand::Rng as _;
                    let fisher_out = Matrix::from_fn(x.rows(), 1, |_, _| {
                        let u1: f32 = r.gen_range(1e-6..1.0);
                        let u2: f32 = r.gen();
                        ((-2.0 * u1.ln()).sqrt()
                            * (2.0 * std::f32::consts::PI * u2).cos())
                            / x.rows() as f32
                    });
                    let fisher = net.backward(&cache, &fisher_out);
                    let fg: Vec<&Matrix> =
                        fisher.layers.iter().map(|l| &l.preact_grads).collect();
                    kfac.update_stats(&cache, &fg);
                    kfac.step(&mut net, &grads).unwrap();
                } else {
                    sgd.step(&mut net, &grads);
                }
            }
            let d = net.forward(&x).sub(&y);
            d.dot(&d) / (2.0 * x.rows() as f32)
        };
        let kfac_loss = train(true);
        let sgd_loss = train(false);
        assert!(
            kfac_loss < sgd_loss,
            "kfac {kfac_loss} should beat sgd {sgd_loss}"
        );
    }

    #[test]
    fn factors_track_input_statistics() {
        let net = Mlp::new(&[2, 3], Activation::Identity, &mut rng());
        let mut kfac = Kfac::new(&net, KfacConfig::default());
        let x = Matrix::from_rows(&[&[2.0, 0.0], &[2.0, 0.0]]);
        let cache = net.forward_cached(&x);
        let fisher = Matrix::zeros(2, 3);
        kfac.update_stats(&cache, &[&fisher]);
        // A = mean of [2,0,1]ᵀ[2,0,1] = [[4,0,2],[0,0,0],[2,0,1]].
        let a = &kfac.layers[0].a;
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 2), 1.0);
        assert_eq!(a.get(1, 1), 0.0);
    }
}
