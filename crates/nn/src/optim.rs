//! First-order optimizers: SGD (+momentum), RMSprop, Adam.
//!
//! RMSprop is the base optimizer named in the paper's hyperparameters
//! (Sec. V-A2); SGD and Adam support the ablations. All optimizers are
//! stateful per-network and apply updates through [`Mlp::apply_update`]'s
//! additive interface — they construct a preconditioned gradient and step
//! `θ ← θ − lr · precond(g)`.

use crate::mlp::{Gradients, LayerGrads, Mlp};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A first-order optimizer over an [`Mlp`]'s parameters.
///
/// State is lazily shaped on the first [`Optimizer::step`]; using one
/// optimizer instance across differently shaped networks is a logic error
/// and panics.
pub trait Optimizer {
    /// Applies one update step for `grads` to `net`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match `net`'s layer shapes.
    fn step(&mut self, net: &mut Mlp, grads: &Gradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overwrites the learning rate (e.g. for linear decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Per-layer auxiliary buffers shaped like the gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Slot {
    w: Matrix,
    b: Vec<f32>,
}

fn zero_slots_like(grads: &Gradients) -> Vec<Slot> {
    grads
        .layers
        .iter()
        .map(|g| Slot {
            w: Matrix::zeros(g.dw.rows(), g.dw.cols()),
            b: vec![0.0; g.db.len()],
        })
        .collect()
}

fn check_shapes(slots: &[Slot], grads: &Gradients) {
    assert_eq!(slots.len(), grads.layers.len(), "optimizer/layer count mismatch");
    for (s, g) in slots.iter().zip(&grads.layers) {
        assert_eq!(
            (s.w.rows(), s.w.cols(), s.b.len()),
            (g.dw.rows(), g.dw.cols(), g.db.len()),
            "optimizer state shape mismatch"
        );
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Option<Vec<Slot>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum (0 disables).
    ///
    /// # Panics
    ///
    /// Panics for non-finite or negative parameters.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        if self.momentum == 0.0 {
            net.apply_update(grads, -self.lr);
            return;
        }
        let velocity = self
            .velocity
            .get_or_insert_with(|| zero_slots_like(grads));
        check_shapes(velocity, &grads.clone());
        let mut update_layers = Vec::with_capacity(grads.layers.len());
        for (v, g) in velocity.iter_mut().zip(&grads.layers) {
            v.w.scale_in_place(self.momentum);
            v.w.add_scaled(&g.dw, 1.0);
            for (vb, &gb) in v.b.iter_mut().zip(&g.db) {
                *vb = self.momentum * *vb + gb;
            }
            update_layers.push(LayerGrads {
                dw: v.w.clone(),
                db: v.b.clone(),
                preact_grads: Matrix::zeros(0, 0),
            });
        }
        net.apply_update(
            &Gradients {
                layers: update_layers,
            },
            -self.lr,
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSprop (Tieleman & Hinton): divides gradients by a running RMS of
/// their magnitude. The paper's base optimizer (Sec. V-A2).
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    mean_square: Option<Vec<Slot>>,
}

impl RmsProp {
    /// Creates RMSprop with learning rate `lr`, squared-gradient decay
    /// `decay` (typical 0.99), and stabilizer `eps`.
    ///
    /// # Panics
    ///
    /// Panics for invalid parameters.
    pub fn new(lr: f32, decay: f32, eps: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        RmsProp {
            lr,
            decay,
            eps,
            mean_square: None,
        }
    }

    /// RMSprop with common defaults (decay 0.99, eps 1e-5).
    pub fn with_lr(lr: f32) -> Self {
        RmsProp::new(lr, 0.99, 1e-5)
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        let ms = self
            .mean_square
            .get_or_insert_with(|| zero_slots_like(grads));
        check_shapes(ms, grads);
        let mut update_layers = Vec::with_capacity(grads.layers.len());
        for (m, g) in ms.iter_mut().zip(&grads.layers) {
            let mut dw = Matrix::zeros(g.dw.rows(), g.dw.cols());
            for ((mv, &gv), out) in m
                .w
                .as_mut_slice()
                .iter_mut()
                .zip(g.dw.as_slice())
                .zip(dw.as_mut_slice())
            {
                *mv = self.decay * *mv + (1.0 - self.decay) * gv * gv;
                *out = gv / (mv.sqrt() + self.eps);
            }
            let mut db = vec![0.0; g.db.len()];
            for ((mv, &gv), out) in m.b.iter_mut().zip(&g.db).zip(db.iter_mut()) {
                *mv = self.decay * *mv + (1.0 - self.decay) * gv * gv;
                *out = gv / (mv.sqrt() + self.eps);
            }
            update_layers.push(LayerGrads {
                dw,
                db,
                preact_grads: Matrix::zeros(0, 0),
            });
        }
        net.apply_update(
            &Gradients {
                layers: update_layers,
            },
            -self.lr,
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Option<Vec<Slot>>,
    v: Option<Vec<Slot>>,
}

impl Adam {
    /// Creates Adam with the given hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics for invalid parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Adam with the canonical defaults (β1 0.9, β2 0.999, eps 1e-8).
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let m = self.m.get_or_insert_with(|| zero_slots_like(grads));
        let v = self.v.get_or_insert_with(|| zero_slots_like(grads));
        check_shapes(m, grads);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut update_layers = Vec::with_capacity(grads.layers.len());
        for ((ms, vs), g) in m.iter_mut().zip(v.iter_mut()).zip(&grads.layers) {
            let mut dw = Matrix::zeros(g.dw.rows(), g.dw.cols());
            for (((mv, vv), &gv), out) in ms
                .w
                .as_mut_slice()
                .iter_mut()
                .zip(vs.w.as_mut_slice())
                .zip(g.dw.as_slice())
                .zip(dw.as_mut_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                *out = (*mv / bc1) / ((*vv / bc2).sqrt() + self.eps);
            }
            let mut db = vec![0.0; g.db.len()];
            for (((mv, vv), &gv), out) in ms
                .b
                .iter_mut()
                .zip(vs.b.iter_mut())
                .zip(&g.db)
                .zip(db.iter_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                *out = (*mv / bc1) / ((*vv / bc2).sqrt() + self.eps);
            }
            update_layers.push(LayerGrads {
                dw,
                db,
                preact_grads: Matrix::zeros(0, 0),
            });
        }
        net.apply_update(
            &Gradients {
                layers: update_layers,
            },
            -self.lr,
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    /// Regression task: y = sin-ish mapping; all optimizers must reduce the
    /// loss substantially.
    fn train_with(optimizer: &mut dyn Optimizer, steps: usize) -> (f32, f32) {
        let mut net = Mlp::new(&[2, 24, 1], Activation::Tanh, &mut rng());
        let x = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[0.5, -0.5],
            &[-0.8, 0.3],
            &[0.9, 0.9],
            &[-0.2, -0.9],
            &[0.4, 0.7],
        ]);
        let y = Matrix::from_rows(&[&[0.1], &[0.0], &[-0.5], &[0.9], &[-0.6], &[0.55]]);
        let loss = |net: &Mlp| {
            let d = net.forward(&x).sub(&y);
            d.dot(&d) / (2.0 * x.rows() as f32)
        };
        let initial = loss(&net);
        for _ in 0..steps {
            let cache = net.forward_cached(&x);
            let dout = cache.output.sub(&y).scaled(1.0 / x.rows() as f32);
            let grads = net.backward(&cache, &dout);
            optimizer.step(&mut net, &grads);
        }
        (initial, loss(&net))
    }

    #[test]
    fn sgd_converges() {
        let (i, f) = train_with(&mut Sgd::new(0.3, 0.0), 400);
        assert!(f < 0.1 * i, "{i} -> {f}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let (i, f) = train_with(&mut Sgd::new(0.1, 0.9), 400);
        assert!(f < 0.1 * i, "{i} -> {f}");
    }

    #[test]
    fn rmsprop_converges() {
        let (i, f) = train_with(&mut RmsProp::with_lr(0.01), 400);
        assert!(f < 0.1 * i, "{i} -> {f}");
    }

    #[test]
    fn adam_converges() {
        let (i, f) = train_with(&mut Adam::with_lr(0.02), 400);
        assert!(f < 0.1 * i, "{i} -> {f}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = RmsProp::with_lr(0.25);
        assert_eq!(o.learning_rate(), 0.25);
        o.set_learning_rate(0.1);
        assert_eq!(o.learning_rate(), 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0);
    }

    #[test]
    fn rmsprop_normalizes_gradient_scale() {
        // With RMSprop, huge and tiny gradients produce comparably sized
        // steps (approximately lr-sized) after warmup.
        let mut net = Mlp::new(&[1, 1], Activation::Identity, &mut rng());
        let w0 = net.layers()[0].weights().get(0, 0);
        let mut opt = RmsProp::new(0.01, 0.0, 1e-8); // decay 0 -> pure sign
        let g = Gradients {
            layers: vec![LayerGrads {
                dw: Matrix::from_rows(&[&[1e6]]),
                db: vec![0.0],
                preact_grads: Matrix::zeros(0, 0),
            }],
        };
        opt.step(&mut net, &g);
        let step1 = (net.layers()[0].weights().get(0, 0) - w0).abs();
        assert!((step1 - 0.01).abs() < 1e-4, "step {step1}");
    }
}
