//! A tiny persistent worker pool for deterministic data parallelism.
//!
//! Every parallel primitive here partitions work over *independent output
//! ranges* (rows of a product matrix, layers of a network, evaluation
//! seeds), so the result is bit-identical for any thread count: each output
//! element is computed by exactly one closure invocation whose internal
//! floating-point order does not depend on the partition. Nothing in this
//! module may reduce across chunks.
//!
//! The pool is sized once per process from `DOSCO_THREADS` (default: the
//! machine's available parallelism). Workers are spawned lazily on the
//! first parallel call and park on a condvar between jobs, so a serial
//! process (`DOSCO_THREADS=1`) never starts a thread. Tests can force a
//! width in-process with [`with_threads`], which is how the equivalence
//! suite checks 1-thread vs 4-thread runs inside one binary.
//!
//! Nested parallel calls (e.g. a matmul inside a parallel evaluation seed)
//! detect that they already run inside a pool job and fall back to inline
//! serial execution, so the pool never deadlocks on itself.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on pool threads; beyond this, coordination overhead dominates
/// for the matrix sizes this workspace uses.
const MAX_POOL_THREADS: usize = 16;

/// The pool keeps at least this many slots so [`with_threads`] up to 4 can
/// exercise real cross-thread execution even when `DOSCO_THREADS=1`.
const MIN_POOL_SLOTS: usize = 4;

/// Chunks handed out per thread (load-balancing granularity).
const CHUNKS_PER_THREAD: usize = 4;

thread_local! {
    /// Set while this thread executes a pool job: nested calls run inline.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
    /// Per-thread width override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The configured parallel width: `DOSCO_THREADS` if set (values `< 1`
/// are treated as 1), else `std::thread::available_parallelism()`.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        match std::env::var("DOSCO_THREADS") {
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("DOSCO_THREADS must be an integer, got {v:?}"))
                .max(1),
            Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
        }
        .min(MAX_POOL_THREADS)
    })
}

/// The width parallel primitives use on *this* thread right now: 1 inside
/// a pool job (nested calls are serial), else the [`with_threads`]
/// override, else [`configured_threads`].
pub fn current_threads() -> usize {
    if IN_JOB.with(Cell::get) {
        return 1;
    }
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
        .max(1)
}

/// Runs `f` with the parallel width forced to `n` on this thread
/// (restored afterwards, also on panic). Used by the equivalence tests to
/// compare serial and parallel kernels inside one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.clamp(1, MAX_POOL_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// A type-erased job: `run` claims and executes chunks from the `JobCtx`
/// behind `ctx` until none remain.
#[derive(Clone, Copy)]
struct Task {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// The pointer is only dereferenced while the publishing thread blocks in
// `Pool::run`, which keeps the referent alive (see the visitor protocol).
unsafe impl Send for Task {}

struct PoolState {
    /// The currently published job, if any.
    task: Option<Task>,
    /// Bumped on every publication so a worker never re-enters a job it
    /// already finished helping with.
    epoch: u64,
    /// Workers currently executing the published (or a just-retracted)
    /// job. The publisher cannot return before this reaches zero, which
    /// is what keeps `Task::ctx` alive for every dereference.
    visitors: usize,
    /// First panic payload captured from a worker, rethrown by the
    /// publisher.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a publication.
    work_cv: Condvar,
    /// The publisher parks here waiting for visitors to drain.
    done_cv: Condvar,
}

struct JobCtx<'a, F> {
    f: &'a F,
    next: AtomicUsize,
    num_chunks: usize,
}

/// Monomorphized trampoline: claims chunks until exhausted. Safety: `ctx`
/// must point to a live `JobCtx<F>`; guaranteed by the visitor protocol.
unsafe fn run_job<F: Fn(usize) + Sync>(ctx: *const ()) {
    let job = &*(ctx as *const JobCtx<'_, F>);
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.num_chunks {
            return;
        }
        (job.f)(i);
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_JOB.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = pool.state.lock();
            loop {
                if st.epoch != seen_epoch {
                    if let Some(t) = st.task {
                        seen_epoch = st.epoch;
                        st.visitors += 1;
                        break t;
                    }
                }
                pool.work_cv.wait(&mut st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (task.run)(task.ctx) }));
        let mut st = pool.state.lock();
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.visitors -= 1;
        if st.visitors == 0 {
            pool.done_cv.notify_all();
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                task: None,
                epoch: 0,
                visitors: 0,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        let workers = configured_threads().max(MIN_POOL_SLOTS) - 1;
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("dosco-par-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

impl Pool {
    /// Publishes a job of `num_chunks` chunks, participates in executing
    /// it, and returns once every chunk has run. Chunks are claimed
    /// dynamically; each index `0..num_chunks` is executed exactly once.
    fn run<F: Fn(usize) + Sync>(&self, num_chunks: usize, f: &F) {
        let job = JobCtx {
            f,
            next: AtomicUsize::new(0),
            num_chunks,
        };
        let task = Task {
            run: run_job::<F>,
            ctx: (&job as *const JobCtx<'_, F>).cast(),
        };
        {
            let mut st = self.state.lock();
            st.task = Some(task);
            st.epoch += 1;
            self.work_cv.notify_all();
        }
        // Participate from the publishing thread; mark it as in-job so the
        // chunks it runs inline don't re-enter the pool.
        IN_JOB.with(|fl| fl.set(true));
        let own = catch_unwind(AssertUnwindSafe(|| unsafe { run_job::<F>(task.ctx) }));
        IN_JOB.with(|fl| fl.set(false));
        // Retract the job and wait for helpers to drain; only then is it
        // safe to let `job` go out of scope.
        let panic = {
            let mut st = self.state.lock();
            st.task = None;
            while st.visitors > 0 {
                self.done_cv.wait(&mut st);
            }
            st.panic.take()
        };
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

/// Splits `0..n` into contiguous chunks of at least `grain` indices and
/// runs `f` on each chunk, in parallel when the current width allows.
///
/// `f` must only write outputs owned by its own index range; under that
/// contract the result is identical for every thread count and partition.
pub fn par_for<F: Fn(Range<usize>) + Sync>(n: usize, grain: usize, f: F) {
    if n == 0 {
        return;
    }
    let width = current_threads();
    let chunk = grain.max(n.div_ceil(width * CHUNKS_PER_THREAD)).max(1);
    let num_chunks = n.div_ceil(chunk);
    if width <= 1 || num_chunks <= 1 {
        f(0..n);
        return;
    }
    pool().run(num_chunks, &|i: usize| {
        let start = i * chunk;
        f(start..(start + chunk).min(n));
    });
}

/// Splits `data` into consecutive pieces of `chunk_len` elements (the last
/// may be shorter, as with [`slice::chunks_mut`]) and runs `f(piece_index,
/// piece)` on each, in parallel when the current width allows.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = data.len();
    let num_chunks = total.div_ceil(chunk_len);
    if current_threads() <= 1 || num_chunks <= 1 {
        for (i, piece) in data.chunks_mut(chunk_len).enumerate() {
            f(i, piece);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    pool().run(num_chunks, &|i: usize| {
        let start = i * chunk_len;
        let len = chunk_len.min(total - start);
        // Each index is claimed exactly once, so the pieces are disjoint.
        let piece = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        f(i, piece);
    });
}

/// Applies `f` to every item and collects the results in order, one pool
/// chunk per item — intended for coarse work (an evaluation seed, a
/// network layer), not per-element loops.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    par_chunks_mut(&mut out, 1, |i, slot| slot[0] = Some(f(i, &items[i])));
    out.into_iter()
        .map(|r| r.expect("every index executed"))
        .collect()
}

/// Like [`par_map`] but with mutable access to each item (e.g. stepping
/// environments in place while collecting their transition results).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let items_ptr = SendPtr(items.as_mut_ptr());
    par_chunks_mut(&mut out, 1, |i, slot| {
        // Index `i` is visited exactly once, so this &mut is exclusive.
        let item = unsafe { &mut *items_ptr.get().add(i) };
        slot[0] = Some(f(i, item));
    });
    out.into_iter()
        .map(|r| r.expect("every index executed"))
        .collect()
}

/// A raw pointer that may cross threads; every use derives disjoint
/// regions from a uniquely-claimed chunk index. Accessed via [`SendPtr::get`]
/// so closures capture the (Sync) wrapper, not the bare pointer field.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_covers_every_index_once() {
        for width in [1, 2, 4] {
            with_threads(width, || {
                let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
                par_for(1000, 16, |r| {
                    for i in r {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_chunks_mut_partitions_like_chunks_mut() {
        for width in [1, 4] {
            with_threads(width, || {
                let mut data = vec![0u32; 103];
                par_chunks_mut(&mut data, 10, |i, piece| {
                    for (j, v) in piece.iter_mut().enumerate() {
                        *v = (i * 10 + j) as u32;
                    }
                });
                let expect: Vec<u32> = (0..103).collect();
                assert_eq!(data, expect);
            });
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        let serial = with_threads(1, || par_map(&items, |_, &x| x * x));
        let parallel = with_threads(4, || par_map(&items, |_, &x| x * x));
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn par_map_mut_gives_exclusive_access() {
        let mut items = vec![1u64; 64];
        let sums = with_threads(4, || {
            par_map_mut(&mut items, |i, v| {
                *v += i as u64;
                *v
            })
        });
        assert_eq!(items[10], 11);
        assert_eq!(sums[10], 11);
    }

    #[test]
    fn nested_calls_run_inline() {
        with_threads(4, || {
            let hits = AtomicU64::new(0);
            par_for(8, 1, |outer| {
                for _ in outer {
                    // Inside a job the width collapses to 1, so this inner
                    // call must not touch the pool.
                    assert_eq!(current_threads(), 1);
                    par_for(4, 1, |inner| {
                        hits.fetch_add(inner.len() as u64, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 32);
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(64, 1, |r| {
                    if r.contains(&13) {
                        panic!("boom at 13");
                    }
                });
            });
        });
        assert!(result.is_err(), "panic must propagate");
        // The pool must stay usable after a panicked job.
        with_threads(4, || {
            let n = AtomicUsize::new(0);
            par_for(32, 1, |r| {
                n.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), 32);
        });
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = current_threads();
        with_threads(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
    }
}
