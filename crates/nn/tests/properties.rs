//! Property-based tests for the NN substrate.

use dosco_nn::dist::{log_softmax_row, softmax_row, Categorical};
use dosco_nn::linalg::damped_inverse;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use proptest::prelude::*;
use rand::SeedableRng;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) within f32 tolerance on small matrices.
    #[test]
    fn matmul_associative(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let c = Matrix::from_vec(2, 3, c);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transpose round-trips and fused transpose-products agree with the
    /// explicit transpose.
    #[test]
    fn transpose_consistency(data in finite_vec(12)) {
        let m = Matrix::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let other = Matrix::from_vec(3, 2, (0..6).map(|i| i as f32 / 3.0).collect());
        prop_assert_eq!(m.transpose_matmul(&other), m.transpose().matmul(&other));
    }

    /// Softmax rows are probability vectors; log-softmax matches ln(softmax).
    #[test]
    fn softmax_is_probability_vector(logits in finite_vec(5)) {
        let p = softmax_row(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let lp = log_softmax_row(&logits);
        for (l, pr) in lp.iter().zip(&p) {
            prop_assert!((l.exp() - pr).abs() < 1e-5);
        }
    }

    /// Categorical entropy is bounded by ln(K) and non-negative.
    #[test]
    fn entropy_bounds(logits in finite_vec(6)) {
        let d = Categorical::new(&Matrix::row_vector(&logits));
        let h = d.entropy()[0];
        prop_assert!(h >= -1e-5);
        prop_assert!(h <= (6.0f32).ln() + 1e-4);
    }

    /// Sampled actions always have non-zero probability.
    #[test]
    fn samples_in_support(logits in finite_vec(4), seed in 0u64..1000) {
        let d = Categorical::new(&Matrix::row_vector(&logits));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = d.sample(&mut rng)[0];
        prop_assert!(a < 4);
        prop_assert!(d.log_prob(&[a])[0].is_finite());
    }

    /// Damped inverses of SPD matrices satisfy (M + λI)·inv ≈ I.
    #[test]
    fn damped_inverse_correct(data in finite_vec(9), damping in 0.01f64..1.0) {
        let b = Matrix::from_vec(3, 3, data);
        let m = b.matmul_transpose(&b); // PSD
        let inv = damped_inverse(&m, damping).unwrap();
        let damped = m.add(&Matrix::identity(3).scaled(damping as f32));
        let prod = damped.matmul(&inv);
        let err = prod.sub(&Matrix::identity(3)).max_abs();
        prop_assert!(err < 2e-2, "residual {err}");
    }

    /// Forward passes are deterministic and bounded for tanh hidden nets
    /// (hidden activations in [-1,1], output a bounded linear combo).
    #[test]
    fn mlp_forward_finite(obs in finite_vec(8), seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[8, 16, 3], Activation::Tanh, &mut rng);
        let out = net.forward(&Matrix::row_vector(&obs));
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
        prop_assert_eq!(out.clone(), net.forward(&Matrix::row_vector(&obs)));
    }

    /// apply_update with the negated gradient and tiny step never
    /// increases a quadratic loss (descent direction property).
    #[test]
    fn gradient_is_descent_direction(obs in finite_vec(4), seed in 0u64..50) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        let x = Matrix::row_vector(&obs);
        let loss = |n: &Mlp| {
            let o = n.forward(&x);
            0.5 * o.dot(&o)
        };
        let before = loss(&net);
        prop_assume!(before > 1e-6);
        let cache = net.forward_cached(&x);
        let grads = net.backward(&cache, &cache.output);
        net.apply_update(&grads, -1e-4);
        let after = loss(&net);
        prop_assert!(after <= before + 1e-6, "{before} -> {after}");
    }
}
