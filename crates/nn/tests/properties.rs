//! Property-based tests for the NN substrate.

use dosco_nn::dist::{log_softmax_row, softmax_row, Categorical};
use dosco_nn::linalg::damped_inverse;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_nn::par;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, len)
}

fn rand_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-2.0f32..2.0))
}

/// Bit patterns of every element — the equivalence contract is *bit*
/// identity (also distinguishes -0.0 from 0.0 and compares NaNs).
fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The dispatched-vs-reference contract, parameterized by the active
/// `DOSCO_SIMD` kernel: scalar and AVX2 modes must match the naive
/// reference *bitwise*; the opt-in FMA mode fuses multiply-add (one
/// rounding per step) so it gets a tight tolerance instead (±1 ulp per
/// term over k ≤ 512 stays far below 1e-3 absolute at these magnitudes).
/// Thread/batch invariance stays bitwise in every mode and is asserted
/// separately.
fn gemm_matches(actual: &Matrix, reference: &Matrix) -> bool {
    if dosco_nn::simd::active().bit_exact() {
        bits(actual) == bits(reference)
    } else {
        actual
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .all(|(a, b)| (a - b).abs() <= 1e-3 + 1e-4 * b.abs() || (a.is_nan() && b.is_nan()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) within f32 tolerance on small matrices.
    #[test]
    fn matmul_associative(a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let c = Matrix::from_vec(2, 3, c);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transpose round-trips and fused transpose-products agree with the
    /// explicit transpose.
    #[test]
    fn transpose_consistency(data in finite_vec(12)) {
        let m = Matrix::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let other = Matrix::from_vec(3, 2, (0..6).map(|i| i as f32 / 3.0).collect());
        prop_assert_eq!(m.transpose_matmul(&other), m.transpose().matmul(&other));
    }

    /// Softmax rows are probability vectors; log-softmax matches ln(softmax).
    #[test]
    fn softmax_is_probability_vector(logits in finite_vec(5)) {
        let p = softmax_row(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let lp = log_softmax_row(&logits);
        for (l, pr) in lp.iter().zip(&p) {
            prop_assert!((l.exp() - pr).abs() < 1e-5);
        }
    }

    /// Categorical entropy is bounded by ln(K) and non-negative.
    #[test]
    fn entropy_bounds(logits in finite_vec(6)) {
        let d = Categorical::new(&Matrix::row_vector(&logits));
        let h = d.entropy()[0];
        prop_assert!(h >= -1e-5);
        prop_assert!(h <= (6.0f32).ln() + 1e-4);
    }

    /// Sampled actions always have non-zero probability.
    #[test]
    fn samples_in_support(logits in finite_vec(4), seed in 0u64..1000) {
        let d = Categorical::new(&Matrix::row_vector(&logits));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = d.sample(&mut rng)[0];
        prop_assert!(a < 4);
        prop_assert!(d.log_prob(&[a])[0].is_finite());
    }

    /// Damped inverses of SPD matrices satisfy (M + λI)·inv ≈ I.
    #[test]
    fn damped_inverse_correct(data in finite_vec(9), damping in 0.01f64..1.0) {
        let b = Matrix::from_vec(3, 3, data);
        let m = b.matmul_transpose(&b); // PSD
        let inv = damped_inverse(&m, damping).unwrap();
        let damped = m.add(&Matrix::identity(3).scaled(damping as f32));
        let prod = damped.matmul(&inv);
        let err = prod.sub(&Matrix::identity(3)).max_abs();
        prop_assert!(err < 2e-2, "residual {err}");
    }

    /// Forward passes are deterministic and bounded for tanh hidden nets
    /// (hidden activations in [-1,1], output a bounded linear combo).
    #[test]
    fn mlp_forward_finite(obs in finite_vec(8), seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[8, 16, 3], Activation::Tanh, &mut rng);
        let out = net.forward(&Matrix::row_vector(&obs));
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
        prop_assert_eq!(out.clone(), net.forward(&Matrix::row_vector(&obs)));
    }

    /// The dispatched `matmul` kernel matches the naive reference
    /// (bitwise in scalar/AVX2 modes, tight tolerance under opt-in FMA —
    /// see [`gemm_matches`]) at 1 and 4 threads, over shapes that cross
    /// every block boundary (1×N, N×1, non-multiples of the 32/64/256
    /// blocks). Serial vs parallel stays *bitwise* in every mode.
    #[test]
    fn matmul_matches_reference_bitwise(
        m in 1usize..=80, k in 1usize..=64, n in 1usize..=64, seed in 0u64..1000
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let reference = a.matmul_ref(&b);
        let serial = par::with_threads(1, || a.matmul(&b));
        let parallel = par::with_threads(4, || a.matmul(&b));
        prop_assert!(gemm_matches(&serial, &reference));
        prop_assert_eq!(bits(&parallel), bits(&serial));
    }

    /// Same contract for the fused `selfᵀ · other` kernel.
    #[test]
    fn transpose_matmul_matches_reference_bitwise(
        m in 1usize..=64, k in 1usize..=80, n in 1usize..=64, seed in 0u64..1000
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_matrix(k, m, &mut rng); // self is k×m, output m×n
        let b = rand_matrix(k, n, &mut rng);
        let reference = a.transpose_matmul_ref(&b);
        let serial = par::with_threads(1, || a.transpose_matmul(&b));
        let parallel = par::with_threads(4, || a.transpose_matmul(&b));
        prop_assert!(gemm_matches(&serial, &reference));
        prop_assert_eq!(bits(&parallel), bits(&serial));
    }

    /// Same contract for the fused `self · otherᵀ` kernel.
    #[test]
    fn matmul_transpose_matches_reference_bitwise(
        m in 1usize..=80, k in 1usize..=64, n in 1usize..=64, seed in 0u64..1000
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(n, k, &mut rng); // other is n×k, output m×n
        let reference = a.matmul_transpose_ref(&b);
        let serial = par::with_threads(1, || a.matmul_transpose(&b));
        let parallel = par::with_threads(4, || a.matmul_transpose(&b));
        prop_assert!(gemm_matches(&serial, &reference));
        prop_assert_eq!(bits(&parallel), bits(&serial));
    }

    /// The `*_into` variants overwrite stale output contents completely
    /// (a leaked stale NaN would fail [`gemm_matches`] in every mode).
    #[test]
    fn into_variants_overwrite_stale_output(seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = rand_matrix(5, 7, &mut rng);
        let b = rand_matrix(7, 3, &mut rng);
        let mut out = Matrix::from_fn(5, 3, |_, _| f32::NAN);
        a.matmul_into(&b, &mut out);
        prop_assert!(gemm_matches(&out, &a.matmul_ref(&b)));
    }

    /// A B-row batch forward is *bitwise* identical to B single-row
    /// forwards — the serving fabric's correctness keystone: shards may
    /// batch queued decisions into one matrix call without changing any
    /// decision. Holds because the blocked GEMM computes each output
    /// element independently with a single ascending-k accumulator.
    #[test]
    fn batch_forward_bitwise_matches_single_rows(
        seed in 0u64..500,
        batch in 1usize..9,
        hidden in 1usize..24,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[7, hidden, 5], Activation::Tanh, &mut rng);
        let x = rand_matrix(batch, 7, &mut rng);
        let batched = net.forward(&x);
        prop_assert_eq!(batched.rows(), batch);
        for r in 0..batch {
            let single = net.forward(&Matrix::row_vector(x.row(r)));
            let brow: Vec<u32> = batched.row(r).iter().map(|v| v.to_bits()).collect();
            let srow: Vec<u32> = single.row(0).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&brow, &srow, "row {} diverged", r);
        }
    }

    /// Same keystone under thread-count variation: the batched forward is
    /// bit-identical whether the pool runs 1 or 4 workers.
    #[test]
    fn batch_forward_thread_invariant(seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[6, 12, 4], Activation::Tanh, &mut rng);
        let x = rand_matrix(5, 6, &mut rng);
        let t1 = par::with_threads(1, || net.forward(&x));
        let t4 = par::with_threads(4, || net.forward(&x));
        prop_assert_eq!(bits(&t1), bits(&t4));
    }

    /// apply_update with the negated gradient and tiny step never
    /// increases a quadratic loss (descent direction property).
    #[test]
    fn gradient_is_descent_direction(obs in finite_vec(4), seed in 0u64..50) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        let x = Matrix::row_vector(&obs);
        let loss = |n: &Mlp| {
            let o = n.forward(&x);
            0.5 * o.dot(&o)
        };
        let before = loss(&net);
        prop_assume!(before > 1e-6);
        let cache = net.forward_cached(&x);
        let grads = net.backward(&cache, &cache.output);
        net.apply_update(&grads, -1e-4);
        let after = loss(&net);
        prop_assert!(after <= before + 1e-6, "{before} -> {after}");
    }
}

/// Shapes big enough to clear the parallel-dispatch threshold (so the
/// 4-thread run genuinely splits row blocks across pool workers), plus
/// degenerate and off-block-boundary shapes.
#[test]
fn gemm_equivalence_at_paper_and_parallel_scale() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for &(m, k, n) in &[
        (96usize, 64usize, 96usize), // above threshold: parallel path
        (256, 512, 256),             // large: many row blocks and k panels
        (64, 16, 256),               // the paper's input layer at batch 64
        (1, 500, 7),                 // single row
        (500, 1, 7),                 // inner dimension 1
        (33, 65, 257),               // one past every block size
    ] {
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let reference = a.matmul_ref(&b);
        let serial = par::with_threads(1, || a.matmul(&b));
        let parallel = par::with_threads(4, || a.matmul(&b));
        assert!(gemm_matches(&serial, &reference), "serial matmul {m}x{k}x{n}");
        assert_eq!(
            bits(&parallel),
            bits(&serial),
            "thread-invariance matmul {m}x{k}x{n}"
        );

        let at = rand_matrix(k, m, &mut rng);
        let reference = at.transpose_matmul_ref(&b);
        assert!(
            gemm_matches(&par::with_threads(4, || at.transpose_matmul(&b)), &reference),
            "parallel transpose_matmul {m}x{k}x{n}"
        );

        let bt = rand_matrix(n, k, &mut rng);
        let reference = a.matmul_transpose_ref(&bt);
        assert!(
            gemm_matches(&par::with_threads(4, || a.matmul_transpose(&bt)), &reference),
            "parallel matmul_transpose {m}x{k}x{n}"
        );
    }
}

/// The zero fast path the naive kernels used to take silently dropped
/// non-finite operands (`0 · ∞` and `0 · NaN` are NaN, not 0); the
/// blocked kernels and the references must propagate them.
#[test]
fn gemm_propagates_nan_and_inf_through_zero_rows() {
    let a = Matrix::from_rows(&[&[0.0, 1.0]]);
    let b = Matrix::from_rows(&[&[f32::NAN, f32::INFINITY], &[1.0, 2.0]]);
    let c = a.matmul(&b);
    assert!(c.get(0, 0).is_nan(), "0·NaN + 1·1 must be NaN");
    assert!(c.get(0, 1).is_nan(), "0·∞ + 1·2 must be NaN");
    assert_eq!(bits(&c), bits(&a.matmul_ref(&b)));

    let at = Matrix::from_rows(&[&[0.0], &[1.0]]); // (Aᵀ = [0, 1])
    let c = at.transpose_matmul(&b);
    assert!(c.get(0, 0).is_nan());
    assert_eq!(bits(&c), bits(&at.transpose_matmul_ref(&b)));

    let bt = Matrix::from_rows(&[&[f32::NAN, 1.0], &[f32::INFINITY, 2.0]]);
    let c = a.matmul_transpose(&bt);
    assert!(c.get(0, 0).is_nan(), "0·NaN + 1·1 must be NaN");
    assert_eq!(bits(&c), bits(&a.matmul_transpose_ref(&bt)));
}

/// Full forward/backward at the paper's architecture is bit-identical at
/// 1 and 4 threads (the partition only splits independent output rows).
#[test]
fn mlp_forward_backward_thread_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let net = Mlp::paper_arch(16, 4, &mut rng);
    let x = rand_matrix(64, 16, &mut rng);
    let run = || {
        let cache = net.forward_cached(&x);
        let grads = net.backward(&cache, &cache.output);
        (cache, grads)
    };
    let (c1, g1) = par::with_threads(1, run);
    let (c4, g4) = par::with_threads(4, run);
    assert_eq!(bits(&c1.output), bits(&c4.output));
    for (a, b) in g1.layers.iter().zip(&g4.layers) {
        assert_eq!(bits(&a.dw), bits(&b.dw));
        assert_eq!(a.db, b.db);
    }
}
