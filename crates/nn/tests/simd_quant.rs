//! Forced-kernel SIMD equivalence and quantization tests.
//!
//! These force specific kernels through the `*_into_with` APIs, so they
//! exercise the AVX2/FMA paths regardless of `DOSCO_SIMD` (skipping
//! silently on CPUs without the features). Contracts:
//!
//! - AVX2 kernels are **bit-identical** to scalar for `matmul` and
//!   `transpose_matmul` (and `matmul_transpose` trivially: it routes to
//!   the scalar kernel below FMA).
//! - FMA kernels are deterministic and within tight tolerance of scalar.
//! - The int8 quantized forward is deterministic, batch-split invariant,
//!   and its AVX2 dot kernel is bit-equal to its scalar one (tested in
//!   the `quant` module; here we pin the end-to-end argmax behavior the
//!   serve plane relies on).

use dosco_nn::dist::Categorical;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::Mlp;
use dosco_nn::quant::QuantizedMlp;
use dosco_nn::simd::GemmKernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-2.0f32..2.0))
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Shapes crossing every tile/block boundary: full 16-wide tiles, column
/// remainders, 4/2/1-row tails, K_BLOCK/J_BLOCK edges, degenerate dims.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 5, 17),
    (3, 64, 16),
    (4, 65, 33),
    (7, 13, 15),
    (8, 128, 48),
    (9, 100, 257),
    (33, 65, 31),
    (64, 16, 256),
    (80, 512, 96),
];

#[test]
fn avx2_matmul_is_bit_identical_to_scalar() {
    if !GemmKernel::Avx2.is_available() {
        eprintln!("skipping: no AVX2 on this CPU");
        return;
    }
    let mut rng = StdRng::seed_from_u64(1);
    for &(m, k, n) in SHAPES {
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let mut scalar = Matrix::zeros(m, n);
        let mut avx2 = Matrix::zeros(m, n);
        a.matmul_into_with(&b, &mut scalar, GemmKernel::Scalar);
        a.matmul_into_with(&b, &mut avx2, GemmKernel::Avx2);
        assert_eq!(bits(&scalar), bits(&avx2), "matmul {m}x{k}x{n}");
    }
}

#[test]
fn avx2_transpose_matmul_is_bit_identical_to_scalar() {
    if !GemmKernel::Avx2.is_available() {
        eprintln!("skipping: no AVX2 on this CPU");
        return;
    }
    let mut rng = StdRng::seed_from_u64(2);
    for &(m, k, n) in SHAPES {
        let a = rand_matrix(k, m, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let mut scalar = Matrix::zeros(m, n);
        let mut avx2 = Matrix::zeros(m, n);
        a.transpose_matmul_into_with(&b, &mut scalar, GemmKernel::Scalar);
        a.transpose_matmul_into_with(&b, &mut avx2, GemmKernel::Avx2);
        assert_eq!(bits(&scalar), bits(&avx2), "transpose_matmul {m}x{k}x{n}");
    }
}

#[test]
fn avx2_matmul_transpose_routes_to_the_scalar_kernel() {
    if !GemmKernel::Avx2.is_available() {
        eprintln!("skipping: no AVX2 on this CPU");
        return;
    }
    let mut rng = StdRng::seed_from_u64(3);
    for &(m, k, n) in SHAPES {
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(n, k, &mut rng);
        let mut scalar = Matrix::zeros(m, n);
        let mut avx2 = Matrix::zeros(m, n);
        a.matmul_transpose_into_with(&b, &mut scalar, GemmKernel::Scalar);
        a.matmul_transpose_into_with(&b, &mut avx2, GemmKernel::Avx2);
        assert_eq!(bits(&scalar), bits(&avx2), "matmul_transpose {m}x{k}x{n}");
    }
}

/// FMA fuses multiply-add (one rounding per step): deterministic, within
/// ~1 ulp/term of scalar, but not bit-comparable — which is exactly why
/// it is opt-in.
#[test]
fn fma_kernels_are_deterministic_and_close_to_scalar() {
    if !GemmKernel::Fma.is_available() {
        eprintln!("skipping: no FMA on this CPU");
        return;
    }
    let mut rng = StdRng::seed_from_u64(4);
    for &(m, k, n) in SHAPES {
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let bt = b.transpose();
        let mut scalar = Matrix::zeros(m, n);
        let mut fma = Matrix::zeros(m, n);
        let mut fma2 = Matrix::zeros(m, n);
        a.matmul_into_with(&b, &mut scalar, GemmKernel::Scalar);
        a.matmul_into_with(&b, &mut fma, GemmKernel::Fma);
        a.matmul_into_with(&b, &mut fma2, GemmKernel::Fma);
        assert_eq!(bits(&fma), bits(&fma2), "fma determinism {m}x{k}x{n}");
        for (x, y) in fma.as_slice().iter().zip(scalar.as_slice()) {
            assert!((x - y).abs() <= 1e-3 + 1e-4 * y.abs(), "matmul {m}x{k}x{n}: {x} vs {y}");
        }

        let mut scalar_t = Matrix::zeros(m, n);
        let mut fma_t = Matrix::zeros(m, n);
        a.matmul_transpose_into_with(&bt, &mut scalar_t, GemmKernel::Scalar);
        a.matmul_transpose_into_with(&bt, &mut fma_t, GemmKernel::Fma);
        for (x, y) in fma_t.as_slice().iter().zip(scalar_t.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-3 + 1e-4 * y.abs(),
                "matmul_transpose {m}x{k}x{n}: {x} vs {y}"
            );
        }
    }
}

/// The serving keystone holds for the FMA kernel too: every output row
/// depends only on its input row, so batched == single-row *bitwise*
/// even though FMA is not bit-comparable to scalar.
#[test]
fn fma_matmul_is_batch_split_invariant() {
    if !GemmKernel::Fma.is_available() {
        eprintln!("skipping: no FMA on this CPU");
        return;
    }
    let mut rng = StdRng::seed_from_u64(5);
    let a = rand_matrix(9, 70, &mut rng);
    let b = rand_matrix(70, 33, &mut rng);
    let mut batched = Matrix::zeros(9, 33);
    a.matmul_into_with(&b, &mut batched, GemmKernel::Fma);
    for r in 0..a.rows() {
        let single_in = Matrix::from_rows(&[a.row(r)]);
        let mut single = Matrix::zeros(1, 33);
        single_in.matmul_into_with(&b, &mut single, GemmKernel::Fma);
        let srow: Vec<u32> = single.row(0).iter().map(|v| v.to_bits()).collect();
        let brow: Vec<u32> = batched.row(r).iter().map(|v| v.to_bits()).collect();
        assert_eq!(srow, brow, "row {r}");
    }
}

/// SIMD kernels must propagate NaN/∞ like the reference (no zero-skip):
/// `0 · NaN` and `0 · ∞` are NaN, and the poisoned elements sit inside
/// the vector lanes (col 0 and col 16 at n = 17; k = 40 for the
/// k-vectorized FMA dot), not just the scalar tails.
#[test]
fn simd_kernels_propagate_nan_and_inf() {
    // matmul / transpose_matmul: out row = 0·row0(b) + 1·row1(b).
    let a = Matrix::from_rows(&[&[0.0, 1.0]]); // 1×2
    let mut b = Matrix::from_fn(2, 17, |_, _| 1.0);
    b.set(0, 0, f32::NAN);
    b.set(0, 16, f32::INFINITY);
    // matmul_transpose: 40-long dot with the NaN inside the vector body.
    let mut a_long = Matrix::zeros(1, 40);
    a_long.set(0, 1, 1.0);
    let mut b_long = Matrix::from_fn(1, 40, |_, _| 1.0);
    b_long.set(0, 0, f32::NAN);
    for kernel in [GemmKernel::Avx2, GemmKernel::Fma] {
        if !kernel.is_available() {
            continue;
        }
        let mut out = Matrix::zeros(1, 17);
        a.matmul_into_with(&b, &mut out, kernel);
        assert!(out.get(0, 0).is_nan(), "{kernel:?}: matmul 0·NaN");
        assert!(out.get(0, 16).is_nan(), "{kernel:?}: matmul 0·∞");

        let at = a.transpose(); // 2×1, so atᵀ·b == a·b
        let mut out_t = Matrix::zeros(1, 17);
        at.transpose_matmul_into_with(&b, &mut out_t, kernel);
        assert!(out_t.get(0, 0).is_nan(), "{kernel:?}: transpose_matmul 0·NaN");
        assert!(out_t.get(0, 16).is_nan(), "{kernel:?}: transpose_matmul 0·∞");

        let mut out_mt = Matrix::zeros(1, 1);
        a_long.matmul_transpose_into_with(&b_long, &mut out_mt, kernel);
        assert!(out_mt.get(0, 0).is_nan(), "{kernel:?}: matmul_transpose 0·NaN");
    }
}

/// End-to-end decision agreement on the paper architecture: int8
/// quantized logits pick the same greedy action as f32 on nearly all
/// random observations. The serve-plane contract (recorded corpus,
/// pinned threshold) lives in `dosco_serve`; this is the nn-level sanity
/// bound with a generous margin.
#[test]
fn quantized_argmax_agrees_with_f32_on_random_observations() {
    let mut rng = StdRng::seed_from_u64(6);
    let net = Mlp::paper_arch(24, 6, &mut rng);
    let q = QuantizedMlp::from_mlp(&net);
    let n = 512;
    let x = rand_matrix(n, 24, &mut rng);
    let exact = Categorical::new(&net.forward(&x)).argmax();
    let approx = Categorical::new(&q.forward(&x)).argmax();
    let agree = exact.iter().zip(&approx).filter(|(a, b)| a == b).count();
    assert!(
        agree as f64 >= 0.95 * n as f64,
        "argmax agreement {agree}/{n} below 95%"
    );
}
