//! Churn schedules: scripted timelines plus seeded stochastic generators,
//! compiled against a concrete topology into a [`ChurnTimeline`].
//!
//! Compilation is a pure function of `(schedule, topology, horizon, seed)`
//! and is where all validation lives: the simulator's own loader panics on
//! malformed timelines (programming errors), while [`ChurnSchedule::compile`]
//! returns typed [`ChurnError`]s for anything a config file could get wrong.
//!
//! Determinism contract: every stochastic process draws from its own RNG
//! stream keyed by `(seed, process kind, entity id)`, entities are visited
//! in dense-id order, and the merge into one timeline uses the simulator's
//! stable time sort — so the compiled timeline never depends on iteration
//! or thread scheduling, only on the inputs.

use dosco_simnet::{ChurnAction, ChurnTimeline, TransitPolicy};
use dosco_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A malformed churn schedule, detected at compile time.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnError {
    /// A scripted action targets a node outside the topology.
    UnknownNode {
        /// The out-of-range node.
        node: NodeId,
        /// Nodes in the topology.
        num_nodes: usize,
    },
    /// A scripted action targets a link outside the topology.
    UnknownLink {
        /// The out-of-range link.
        link: LinkId,
        /// Links in the topology.
        num_links: usize,
    },
    /// A scripted event time is NaN, infinite, or negative.
    BadTime {
        /// The offending time.
        time: f64,
    },
    /// A degradation/spike factor is NaN, infinite, or negative.
    BadFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A stochastic process parameter is not a positive finite number.
    BadProcess {
        /// Which parameter (e.g. `link_failures.mtbf`).
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A stochastic factor range has `min > max`.
    BadFactorRange {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::UnknownNode { node, num_nodes } => {
                write!(f, "churn targets {node} but the topology has {num_nodes} nodes")
            }
            ChurnError::UnknownLink { link, num_links } => {
                write!(f, "churn targets {link} but the topology has {num_links} links")
            }
            ChurnError::BadTime { time } => {
                write!(f, "churn event time {time} is not finite and non-negative")
            }
            ChurnError::BadFactor { factor } => {
                write!(f, "churn factor {factor} is not finite and non-negative")
            }
            ChurnError::BadProcess { param, value } => {
                write!(f, "stochastic churn parameter {param} = {value} must be positive and finite")
            }
            ChurnError::BadFactorRange { min, max } => {
                write!(f, "stochastic churn factor range [{min}, {max}] is inverted")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// An alternating failure/repair renewal process for one entity class.
///
/// Each entity (every link, or every node) independently alternates
/// between up-phases with exponentially distributed length (`mtbf`) and
/// down-phases with exponentially distributed length (`mttr`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureProcess {
    /// Mean time between failures (mean up-phase length).
    pub mtbf: f64,
    /// Mean time to repair (mean down-phase length).
    pub mttr: f64,
}

/// A transient degradation process for one entity class: events arrive
/// with exponentially distributed inter-arrival times; each draws a factor
/// uniformly from `[factor_min, factor_max]`, holds it for `duration`,
/// then restores the nominal value (factor 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeProcess {
    /// Mean inter-arrival time of degradation events per entity.
    pub mean_interval: f64,
    /// How long each degradation lasts before restoration.
    pub duration: f64,
    /// Lower bound of the uniform factor draw.
    pub factor_min: f64,
    /// Upper bound of the uniform factor draw.
    pub factor_max: f64,
}

/// Seeded stochastic churn generators. All processes are optional;
/// [`StochasticChurn::default`] generates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StochasticChurn {
    /// Per-link failure/repair process.
    pub link_failures: Option<FailureProcess>,
    /// Per-node failure/repair process.
    pub node_failures: Option<FailureProcess>,
    /// Per-link transient capacity degradation (factor < 1 throttles).
    pub link_degrades: Option<DegradeProcess>,
    /// Per-node transient capacity degradation.
    pub node_degrades: Option<DegradeProcess>,
    /// Per-link transient delay spikes (factor > 1 slows).
    pub delay_spikes: Option<DegradeProcess>,
}

impl StochasticChurn {
    /// Adds a per-link failure process.
    pub fn with_link_failures(mut self, mtbf: f64, mttr: f64) -> Self {
        self.link_failures = Some(FailureProcess { mtbf, mttr });
        self
    }

    /// Adds a per-node failure process.
    pub fn with_node_failures(mut self, mtbf: f64, mttr: f64) -> Self {
        self.node_failures = Some(FailureProcess { mtbf, mttr });
        self
    }

    /// Adds a per-link capacity-degradation process.
    pub fn with_link_degrades(mut self, p: DegradeProcess) -> Self {
        self.link_degrades = Some(p);
        self
    }

    /// Adds a per-node capacity-degradation process.
    pub fn with_node_degrades(mut self, p: DegradeProcess) -> Self {
        self.node_degrades = Some(p);
        self
    }

    /// Adds a per-link delay-spike process.
    pub fn with_delay_spikes(mut self, p: DegradeProcess) -> Self {
        self.delay_spikes = Some(p);
        self
    }

    fn is_none(&self) -> bool {
        self.link_failures.is_none()
            && self.node_failures.is_none()
            && self.link_degrades.is_none()
            && self.node_degrades.is_none()
            && self.delay_spikes.is_none()
    }

    fn validate(&self) -> Result<(), ChurnError> {
        let positive = |param: &'static str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ChurnError::BadProcess { param, value })
            }
        };
        if let Some(p) = self.link_failures {
            positive("link_failures.mtbf", p.mtbf)?;
            positive("link_failures.mttr", p.mttr)?;
        }
        if let Some(p) = self.node_failures {
            positive("node_failures.mtbf", p.mtbf)?;
            positive("node_failures.mttr", p.mttr)?;
        }
        for (name, p) in [
            ("link_degrades", self.link_degrades),
            ("node_degrades", self.node_degrades),
            ("delay_spikes", self.delay_spikes),
        ] {
            let Some(p) = p else { continue };
            // The param label names the group; the value pins the culprit.
            positive(name, p.mean_interval)?;
            positive(name, p.duration)?;
            for factor in [p.factor_min, p.factor_max] {
                if !factor.is_finite() || factor < 0.0 {
                    return Err(ChurnError::BadFactor { factor });
                }
            }
            if p.factor_min > p.factor_max {
                return Err(ChurnError::BadFactorRange {
                    min: p.factor_min,
                    max: p.factor_max,
                });
            }
        }
        Ok(())
    }
}

/// A churn schedule: scripted events, optional stochastic generators, and
/// the in-transit policy. Compile it against a topology to obtain the
/// [`ChurnTimeline`] a [`dosco_simnet::Simulation`] executes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Scripted `(time, action)` events, in any order.
    pub scripted: Vec<(f64, ChurnAction)>,
    /// Optional stochastic generators.
    pub stochastic: Option<StochasticChurn>,
    /// What happens to flows in transit on a link that fails.
    pub transit: TransitPolicy,
}

impl ChurnSchedule {
    /// The empty schedule. Compiles to [`ChurnTimeline::none`], which the
    /// simulator treats bit-identically to a churn-free run.
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// A purely scripted schedule.
    pub fn scripted(entries: Vec<(f64, ChurnAction)>) -> Self {
        ChurnSchedule {
            scripted: entries,
            ..ChurnSchedule::default()
        }
    }

    /// Appends one scripted event (builder style).
    pub fn at(mut self, time: f64, action: ChurnAction) -> Self {
        self.scripted.push((time, action));
        self
    }

    /// Sets the stochastic generators.
    pub fn with_stochastic(mut self, stochastic: StochasticChurn) -> Self {
        self.stochastic = Some(stochastic);
        self
    }

    /// Sets the in-transit policy for link failures.
    pub fn with_transit(mut self, transit: TransitPolicy) -> Self {
        self.transit = transit;
        self
    }

    /// Whether this schedule can generate any event at all.
    pub fn is_none(&self) -> bool {
        self.scripted.is_empty() && self.stochastic.is_none_or(|s| s.is_none())
    }

    /// Validates the schedule against `topology` and expands it into the
    /// flat timeline of events within `[0, horizon]`. `seed` drives the
    /// stochastic generators only; a purely scripted schedule compiles
    /// identically under every seed.
    pub fn compile(
        &self,
        topology: &Topology,
        horizon: f64,
        seed: u64,
    ) -> Result<ChurnTimeline, ChurnError> {
        let num_nodes = topology.num_nodes();
        let num_links = topology.num_links();
        let mut entries: Vec<(f64, ChurnAction)> = Vec::new();

        for &(time, action) in &self.scripted {
            if !time.is_finite() || time < 0.0 {
                return Err(ChurnError::BadTime { time });
            }
            match action {
                ChurnAction::NodeDown(v)
                | ChurnAction::NodeUp(v)
                | ChurnAction::DegradeNodeCapacity { node: v, .. } => {
                    if v.0 >= num_nodes {
                        return Err(ChurnError::UnknownNode { node: v, num_nodes });
                    }
                }
                ChurnAction::LinkDown(l)
                | ChurnAction::LinkUp(l)
                | ChurnAction::DegradeLinkCapacity { link: l, .. }
                | ChurnAction::DelaySpike { link: l, .. } => {
                    if l.0 >= num_links {
                        return Err(ChurnError::UnknownLink { link: l, num_links });
                    }
                }
            }
            if let Some(factor) = action.factor() {
                if !factor.is_finite() || factor < 0.0 {
                    return Err(ChurnError::BadFactor { factor });
                }
            }
            if time <= horizon {
                entries.push((time, action));
            }
        }

        if let Some(stochastic) = &self.stochastic {
            stochastic.validate()?;
            if let Some(p) = stochastic.link_failures {
                for l in topology.link_ids() {
                    gen_failures(
                        &mut entries,
                        stream_rng(seed, 1, l.0 as u64),
                        p,
                        horizon,
                        ChurnAction::LinkDown(l),
                        ChurnAction::LinkUp(l),
                    );
                }
            }
            if let Some(p) = stochastic.node_failures {
                for v in topology.node_ids() {
                    gen_failures(
                        &mut entries,
                        stream_rng(seed, 2, v.0 as u64),
                        p,
                        horizon,
                        ChurnAction::NodeDown(v),
                        ChurnAction::NodeUp(v),
                    );
                }
            }
            if let Some(p) = stochastic.link_degrades {
                for l in topology.link_ids() {
                    gen_degrades(
                        &mut entries,
                        stream_rng(seed, 3, l.0 as u64),
                        p,
                        horizon,
                        |factor| ChurnAction::DegradeLinkCapacity { link: l, factor },
                    );
                }
            }
            if let Some(p) = stochastic.node_degrades {
                for v in topology.node_ids() {
                    gen_degrades(
                        &mut entries,
                        stream_rng(seed, 4, v.0 as u64),
                        p,
                        horizon,
                        |factor| ChurnAction::DegradeNodeCapacity { node: v, factor },
                    );
                }
            }
            if let Some(p) = stochastic.delay_spikes {
                for l in topology.link_ids() {
                    gen_degrades(
                        &mut entries,
                        stream_rng(seed, 5, l.0 as u64),
                        p,
                        horizon,
                        |factor| ChurnAction::DelaySpike { link: l, factor },
                    );
                }
            }
        }

        // ChurnTimeline::new sorts stably by time, so the deterministic
        // generation order above breaks ties deterministically.
        Ok(ChurnTimeline::new(entries).with_transit(self.transit))
    }
}

/// One RNG stream per `(seed, process kind, entity)`: adding a process or
/// an entity never perturbs the draws of the others.
fn stream_rng(seed: u64, kind: u64, entity: u64) -> StdRng {
    let mixed = (seed ^ (kind << 56) ^ entity)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    StdRng::seed_from_u64(mixed)
}

/// Exponential draw with the given mean; `1 - u ∈ (0, 1]` keeps `ln` finite.
fn exp(rng: &mut StdRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

fn gen_failures(
    entries: &mut Vec<(f64, ChurnAction)>,
    mut rng: StdRng,
    p: FailureProcess,
    horizon: f64,
    down: ChurnAction,
    up: ChurnAction,
) {
    let mut t = 0.0;
    loop {
        t += exp(&mut rng, p.mtbf);
        if t > horizon {
            return;
        }
        entries.push((t, down));
        t += exp(&mut rng, p.mttr);
        if t > horizon {
            return; // still down at the horizon: no repair event
        }
        entries.push((t, up));
    }
}

fn gen_degrades(
    entries: &mut Vec<(f64, ChurnAction)>,
    mut rng: StdRng,
    p: DegradeProcess,
    horizon: f64,
    make: impl Fn(f64) -> ChurnAction,
) {
    let mut t = 0.0;
    loop {
        t += exp(&mut rng, p.mean_interval);
        if t > horizon {
            return;
        }
        let factor = p.factor_min + (p.factor_max - p.factor_min) * rng.gen::<f64>();
        entries.push((t, make(factor)));
        t += p.duration;
        if t > horizon {
            return;
        }
        entries.push((t, make(1.0))); // restore nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_topology::generators;

    fn topo() -> Topology {
        generators::line(4, 1.0, 10.0)
    }

    #[test]
    fn none_compiles_to_empty_timeline() {
        let tl = ChurnSchedule::none().compile(&topo(), 1_000.0, 7).unwrap();
        assert!(tl.is_empty());
        assert!(ChurnSchedule::none().is_none());
    }

    #[test]
    fn scripted_entries_are_sorted_and_filtered_to_horizon() {
        let s = ChurnSchedule::none()
            .at(50.0, ChurnAction::LinkDown(LinkId(0)))
            .at(10.0, ChurnAction::NodeDown(NodeId(1)))
            .at(999.0, ChurnAction::NodeUp(NodeId(1)));
        let tl = s.compile(&topo(), 100.0, 0).unwrap();
        assert_eq!(
            tl.entries(),
            &[
                (10.0, ChurnAction::NodeDown(NodeId(1))),
                (50.0, ChurnAction::LinkDown(LinkId(0))),
            ]
        );
    }

    #[test]
    fn scripted_compile_is_seed_independent() {
        let s = ChurnSchedule::scripted(vec![(5.0, ChurnAction::LinkDown(LinkId(2)))]);
        assert_eq!(
            s.compile(&topo(), 10.0, 1).unwrap(),
            s.compile(&topo(), 10.0, 999).unwrap()
        );
    }

    #[test]
    fn unknown_targets_are_typed_errors() {
        let t = topo(); // 4 nodes, 3 links
        let e = ChurnSchedule::none()
            .at(1.0, ChurnAction::LinkDown(LinkId(3)))
            .compile(&t, 10.0, 0)
            .unwrap_err();
        assert_eq!(e, ChurnError::UnknownLink { link: LinkId(3), num_links: 3 });
        let e = ChurnSchedule::none()
            .at(1.0, ChurnAction::NodeDown(NodeId(4)))
            .compile(&t, 10.0, 0)
            .unwrap_err();
        assert_eq!(e, ChurnError::UnknownNode { node: NodeId(4), num_nodes: 4 });
        assert!(e.to_string().contains("4 nodes"));
    }

    #[test]
    fn bad_times_and_factors_are_typed_errors() {
        let t = topo();
        let e = ChurnSchedule::none()
            .at(-1.0, ChurnAction::LinkDown(LinkId(0)))
            .compile(&t, 10.0, 0)
            .unwrap_err();
        assert_eq!(e, ChurnError::BadTime { time: -1.0 });
        let e = ChurnSchedule::none()
            .at(
                1.0,
                ChurnAction::DelaySpike { link: LinkId(0), factor: f64::NAN },
            )
            .compile(&t, 10.0, 0)
            .unwrap_err();
        assert!(matches!(e, ChurnError::BadFactor { .. }));
    }

    #[test]
    fn bad_process_params_are_typed_errors() {
        let t = topo();
        let s = ChurnSchedule::none()
            .with_stochastic(StochasticChurn::default().with_link_failures(0.0, 5.0));
        let e = s.compile(&t, 10.0, 0).unwrap_err();
        assert_eq!(e, ChurnError::BadProcess { param: "link_failures.mtbf", value: 0.0 });

        let s = ChurnSchedule::none().with_stochastic(StochasticChurn::default().with_delay_spikes(
            DegradeProcess {
                mean_interval: 10.0,
                duration: 1.0,
                factor_min: 3.0,
                factor_max: 2.0,
            },
        ));
        let e = s.compile(&t, 10.0, 0).unwrap_err();
        assert_eq!(e, ChurnError::BadFactorRange { min: 3.0, max: 2.0 });
    }

    #[test]
    fn stochastic_compile_is_deterministic_per_seed() {
        let s = ChurnSchedule::none()
            .with_stochastic(
                StochasticChurn::default()
                    .with_link_failures(200.0, 30.0)
                    .with_node_failures(500.0, 50.0)
                    .with_delay_spikes(DegradeProcess {
                        mean_interval: 300.0,
                        duration: 40.0,
                        factor_min: 2.0,
                        factor_max: 6.0,
                    }),
            )
            .with_transit(TransitPolicy::Deliver);
        let a = s.compile(&topo(), 5_000.0, 42).unwrap();
        let b = s.compile(&topo(), 5_000.0, 42).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "5 horizons worth of MTBF should fire");
        assert_eq!(a.transit(), TransitPolicy::Deliver);
        let c = s.compile(&topo(), 5_000.0, 43).unwrap();
        assert_ne!(a, c, "different seed, different draws");
    }

    #[test]
    fn stochastic_failures_alternate_down_up_per_entity() {
        let s = ChurnSchedule::none()
            .with_stochastic(StochasticChurn::default().with_link_failures(100.0, 20.0));
        let tl = s.compile(&topo(), 10_000.0, 7).unwrap();
        for l in topo().link_ids() {
            let mut down = false;
            let mut last = 0.0;
            for &(t, a) in tl.entries() {
                match a {
                    ChurnAction::LinkDown(x) if x == l => {
                        assert!(!down, "{l} failed while already down");
                        assert!(t >= last);
                        down = true;
                        last = t;
                    }
                    ChurnAction::LinkUp(x) if x == l => {
                        assert!(down, "{l} repaired while up");
                        assert!(t >= last);
                        down = false;
                        last = t;
                    }
                    _ => {}
                }
            }
        }
        assert!(tl.entries().iter().all(|&(t, _)| t <= 10_000.0));
    }

    #[test]
    fn degrades_restore_nominal_after_duration() {
        let s = ChurnSchedule::none().with_stochastic(
            StochasticChurn::default().with_node_degrades(DegradeProcess {
                mean_interval: 100.0,
                duration: 10.0,
                factor_min: 0.2,
                factor_max: 0.8,
            }),
        );
        let tl = s.compile(&topo(), 2_000.0, 3).unwrap();
        assert!(!tl.is_empty());
        let mut restores = 0;
        for &(_, a) in tl.entries() {
            if let ChurnAction::DegradeNodeCapacity { factor, .. } = a {
                if factor == 1.0 {
                    restores += 1;
                } else {
                    assert!((0.2..=0.8).contains(&factor), "factor {factor}");
                }
            }
        }
        assert!(restores > 0, "restore events present");
    }

    #[test]
    fn serde_round_trip() {
        let s = ChurnSchedule::none()
            .at(5.0, ChurnAction::NodeDown(NodeId(0)))
            .with_stochastic(StochasticChurn::default().with_link_failures(100.0, 10.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: ChurnSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
