//! Deterministic substrate fault injection for the coordination simulator.
//!
//! Real substrate networks churn: links cut, nodes reboot, capacity
//! degrades, delay spikes. This crate makes that churn a first-class,
//! *reproducible* input to [`dosco_simnet::Simulation`]:
//!
//! * [`ChurnSchedule`] — a scripted timeline of [`ChurnAction`]s plus
//!   optional seeded stochastic generators ([`StochasticChurn`]:
//!   per-link/per-node MTBF/MTTR failure processes, capacity-degradation
//!   and delay-spike modes). [`ChurnSchedule::compile`] validates it
//!   against a concrete [`dosco_topology::Topology`] (typed
//!   [`ChurnError`]s, never panics) and expands it into the flat
//!   [`ChurnTimeline`] the simulator executes.
//! * [`resilience_report`] — reconstructs, from the simulator's event
//!   stream, the time-windowed success ratio before/during/after each
//!   fault, quantifying how a coordination policy degrades and recovers.
//!
//! Everything is deterministic: the same schedule, topology, horizon and
//! seed always compile to the same timeline (byte-identical under serde),
//! and [`ChurnSchedule::none`] compiles to the empty timeline, which the
//! simulator treats bit-identically to no churn at all.

pub mod report;
pub mod schedule;

pub use report::{resilience_report, FaultWindow, ResilienceReport};
pub use schedule::{ChurnError, ChurnSchedule, DegradeProcess, FailureProcess, StochasticChurn};

// Re-export the simulator-side vocabulary so downstream crates need only
// one import path for churn configuration.
pub use dosco_simnet::{ChurnAction, ChurnStats, ChurnTimeline, TransitPolicy};
