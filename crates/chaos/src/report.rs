//! Resilience reporting: how did the success ratio behave around each
//! fault?
//!
//! Built purely from the simulator's ordered [`SimEvent`] stream (any
//! coordinator, any policy), using the same [`WindowedStats`] machinery
//! the ops surface exposes: `before` is the windowed success ratio at the
//! instant the fault strikes, `during` the ratio at repair time (the
//! window then covers the outage), and `after` the ratio once a full
//! window of terminations has passed since the repair — i.e. whether the
//! policy actually recovered, not merely survived.

use dosco_simnet::{ChurnAction, SimEvent, WindowedStats};
use serde::Serialize;

/// The success-ratio trajectory around one fault.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultWindow {
    /// Stable action label of the fault (`link-down` or `node-down`).
    pub action: String,
    /// Dense id of the failed link or node.
    pub target: u64,
    /// When the fault struck.
    pub fault_time: f64,
    /// When it was repaired; `None` if never repaired in the stream.
    pub repair_time: Option<f64>,
    /// Windowed success ratio just before the fault.
    pub before: Option<f64>,
    /// Windowed success ratio at repair time (covers the outage).
    pub during: Option<f64>,
    /// Windowed success ratio one full window after the repair.
    pub after: Option<f64>,
}

/// A per-fault resilience report over one episode's event stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// One entry per `LinkDown`/`NodeDown`, in fault order.
    pub windows: Vec<FaultWindow>,
    /// Lifetime success ratio over all terminations in the stream.
    pub overall: Option<f64>,
    /// Terminations observed (completions + drops).
    pub terminations: u64,
}

/// Reconstructs the resilience report from an ordered event stream, using
/// a sliding window of `window` terminations (0 panics, per
/// [`WindowedStats::new`]).
pub fn resilience_report(events: &[SimEvent], window: usize) -> ResilienceReport {
    let mut ws = WindowedStats::new(window);
    let mut completed: u64 = 0;
    let mut windows: Vec<FaultWindow> = Vec::new();
    // Open faults by (is_node, target) -> index into `windows`; repairs
    // that never saw a fault are ignored.
    let mut open: Vec<((bool, u64), usize)> = Vec::new();
    // Repaired faults waiting for a full window of fresh terminations:
    // (index, termination count at which `after` is sampled).
    let mut pending: Vec<(usize, u64)> = Vec::new();

    for ev in events {
        match ev {
            SimEvent::FlowCompleted { .. } | SimEvent::FlowDropped { .. } => {
                if matches!(ev, SimEvent::FlowCompleted { .. }) {
                    completed += 1;
                }
                ws.observe(ev);
                let seen = ws.seen();
                pending.retain(|&(idx, due)| {
                    if seen >= due {
                        windows[idx].after = ws.success_ratio();
                        false
                    } else {
                        true
                    }
                });
            }
            SimEvent::ChurnApplied { action, time, .. } => {
                let fault_key = match action {
                    ChurnAction::LinkDown(l) => Some((false, l.0 as u64)),
                    ChurnAction::NodeDown(v) => Some((true, v.0 as u64)),
                    _ => None,
                };
                if let Some(key) = fault_key {
                    open.push((key, windows.len()));
                    windows.push(FaultWindow {
                        action: action.label().to_string(),
                        target: action.target(),
                        fault_time: *time,
                        repair_time: None,
                        before: ws.success_ratio(),
                        during: None,
                        after: None,
                    });
                    continue;
                }
                let repair_key = match action {
                    ChurnAction::LinkUp(l) => Some((false, l.0 as u64)),
                    ChurnAction::NodeUp(v) => Some((true, v.0 as u64)),
                    _ => None,
                };
                if let Some(key) = repair_key {
                    if let Some(pos) = open.iter().position(|&(k, _)| k == key) {
                        let (_, idx) = open.remove(pos);
                        windows[idx].repair_time = Some(*time);
                        windows[idx].during = ws.success_ratio();
                        pending.push((idx, ws.seen() + window as u64));
                    }
                }
            }
            _ => {}
        }
    }

    let terminations = ws.seen();
    ResilienceReport {
        windows,
        overall: (terminations > 0).then(|| completed as f64 / terminations as f64),
        terminations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::{DropReason, FlowId};
    use dosco_topology::{LinkId, NodeId};

    fn done(i: u64) -> SimEvent {
        SimEvent::FlowCompleted {
            flow: FlowId(i),
            time: i as f64,
            e2e_delay: 1.0,
            node: NodeId(0),
        }
    }

    fn dropped(i: u64) -> SimEvent {
        SimEvent::FlowDropped {
            flow: FlowId(i),
            time: i as f64,
            reason: DropReason::LinkFailure,
            node: NodeId(0),
        }
    }

    fn churn(action: ChurnAction, time: f64) -> SimEvent {
        SimEvent::ChurnApplied { action, topo_version: 1, time }
    }

    #[test]
    fn degrade_and_recover_trajectory() {
        // 4 successes, fault, 4 drops, repair, 4 successes.
        let mut events: Vec<SimEvent> = (0..4).map(done).collect();
        events.push(churn(ChurnAction::LinkDown(LinkId(2)), 10.0));
        events.extend((4..8).map(dropped));
        events.push(churn(ChurnAction::LinkUp(LinkId(2)), 20.0));
        events.extend((8..12).map(done));

        let r = resilience_report(&events, 4);
        assert_eq!(r.windows.len(), 1);
        let w = &r.windows[0];
        assert_eq!(w.action, "link-down");
        assert_eq!(w.target, 2);
        assert_eq!(w.fault_time, 10.0);
        assert_eq!(w.repair_time, Some(20.0));
        assert_eq!(w.before, Some(1.0), "perfect before the fault");
        assert_eq!(w.during, Some(0.0), "window covers the outage");
        assert_eq!(w.after, Some(1.0), "recovered one window later");
        assert_eq!(r.overall, Some(8.0 / 12.0));
        assert_eq!(r.terminations, 12);
    }

    #[test]
    fn unrepaired_fault_has_no_during_or_after() {
        let events = vec![
            done(0),
            churn(ChurnAction::NodeDown(NodeId(3)), 5.0),
            dropped(1),
        ];
        let r = resilience_report(&events, 2);
        let w = &r.windows[0];
        assert_eq!(w.action, "node-down");
        assert_eq!(w.repair_time, None);
        assert_eq!(w.before, Some(1.0));
        assert_eq!(w.during, None);
        assert_eq!(w.after, None);
    }

    #[test]
    fn repairs_match_their_own_entity() {
        // Two overlapping link faults; each Up must close its own Down.
        let events = vec![
            churn(ChurnAction::LinkDown(LinkId(0)), 1.0),
            churn(ChurnAction::LinkDown(LinkId(1)), 2.0),
            churn(ChurnAction::LinkUp(LinkId(1)), 3.0),
            churn(ChurnAction::LinkUp(LinkId(0)), 4.0),
        ];
        let r = resilience_report(&events, 4);
        assert_eq!(r.windows[0].target, 0);
        assert_eq!(r.windows[0].repair_time, Some(4.0));
        assert_eq!(r.windows[1].target, 1);
        assert_eq!(r.windows[1].repair_time, Some(3.0));
    }

    #[test]
    fn non_fault_actions_are_ignored() {
        let events = vec![
            churn(ChurnAction::DelaySpike { link: LinkId(0), factor: 3.0 }, 1.0),
            churn(
                ChurnAction::DegradeNodeCapacity { node: NodeId(0), factor: 0.5 },
                2.0,
            ),
            done(0),
        ];
        let r = resilience_report(&events, 2);
        assert!(r.windows.is_empty());
        assert_eq!(r.overall, Some(1.0));
    }
}
